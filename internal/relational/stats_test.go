package relational

import (
	"fmt"
	"sync"
	"testing"
)

func statsTable(t *testing.T) *Table {
	t.Helper()
	ts := &TableSchema{
		Name: "m",
		Columns: []Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "year", Type: TypeInt},
			{Name: "genre", Type: TypeString},
		},
		PrimaryKey: "id",
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(ts)
	genres := []string{"drama", "drama", "drama", "drama", "comedy", "comedy", "noir", "western"}
	for i := 0; i < 400; i++ {
		year := Value(Int(int64(1960 + i%50)))
		if i%11 == 0 {
			year = Null()
		}
		tbl.MustInsert(Row{Int(int64(i)), year, String_(genres[i%len(genres)])})
	}
	return tbl
}

func TestColumnStatsBasics(t *testing.T) {
	tbl := statsTable(t)
	cs, err := tbl.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Rows != 400 || cs.NullCount != 37 {
		t.Errorf("rows/nulls = %d/%d, want 400/37", cs.Rows, cs.NullCount)
	}
	if cs.Distinct != 50 {
		t.Errorf("distinct = %d, want 50", cs.Distinct)
	}
	if Compare(cs.Min, Int(1960)) != 0 || Compare(cs.Max, Int(2009)) != 0 {
		t.Errorf("min/max = %v/%v, want 1960/2009", cs.Min, cs.Max)
	}
	if cs.NullFraction() != 37.0/400 {
		t.Errorf("null fraction = %v, want 37/400", cs.NullFraction())
	}
	if len(cs.Buckets) == 0 {
		t.Fatal("no histogram buckets")
	}
	total := 0
	for _, b := range cs.Buckets {
		total += b.Count
	}
	if total != 363 {
		t.Errorf("histogram covers %d rows, want 363 non-NULL", total)
	}
}

func TestColumnStatsMCVsOnSkew(t *testing.T) {
	tbl := statsTable(t)
	cs, err := tbl.Stats("genre")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Distinct != 4 {
		t.Fatalf("distinct genres = %d, want 4", cs.Distinct)
	}
	if len(cs.MCVs) != 4 {
		t.Fatalf("MCVs = %v, want all 4 genres (every value repeats)", cs.MCVs)
	}
	// drama occurs 4/8 of the time: its MCV entry must be exact and first.
	if Compare(cs.MCVs[0].Value, String_("drama")) != 0 || cs.MCVs[0].Count != 200 {
		t.Errorf("top MCV = %v, want drama x200", cs.MCVs[0])
	}
	if got := cs.EstimateEq(String_("drama")); got != 200 {
		t.Errorf("EstimateEq(drama) = %d, want exact 200", got)
	}
	if got := cs.EstimateEq(String_("horror")); got != 0 {
		t.Errorf("EstimateEq(absent) = %d, want 0", got)
	}
}

func TestColumnStatsRangeEstimate(t *testing.T) {
	tbl := statsTable(t)
	cs, err := tbl.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	// Exact truth: 1970..1979 inclusive covers 10 of 50 year values; years
	// cycle uniformly over the non-NULL rows.
	got := cs.EstimateRange(Int(1970), Int(1979), true, true)
	want := 73 // (10/50) * 363
	if got < want/2 || got > want*2 {
		t.Errorf("EstimateRange(1970..1979) = %d, want within 2x of %d", got, want)
	}
	if got := cs.EstimateRange(Null(), Null(), true, true); got != 363 {
		t.Errorf("unbounded range = %d, want every non-NULL row (363)", got)
	}
	if got := cs.EstimateRange(Int(3000), Null(), true, true); got != 0 {
		t.Errorf("range above max = %d, want 0", got)
	}
}

// TestStatsStaleVersionRebuild is the invalidation contract: statistics
// keyed on a stale Table.Version must be rebuilt, never served. Inserting
// rows between Stats calls must be reflected in fresh distinct counts.
func TestStatsStaleVersionRebuild(t *testing.T) {
	tbl := statsTable(t)
	cs1, err := tbl.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	before := cs1.Distinct
	cs1b, err := tbl.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	if cs1b != cs1 {
		t.Error("unchanged table: Stats must serve the cached snapshot")
	}
	// Mutate: add rows with years outside the existing domain.
	for i := 0; i < 5; i++ {
		tbl.MustInsert(Row{Int(int64(1000 + i)), Int(int64(2100 + i)), String_("scifi")})
	}
	cs2, err := tbl.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	if cs2 == cs1 {
		t.Fatal("stale snapshot served after Insert")
	}
	if cs2.Distinct != before+5 {
		t.Errorf("distinct after insert = %d, want %d", cs2.Distinct, before+5)
	}
	if Compare(cs2.Max, Int(2104)) != 0 {
		t.Errorf("max after insert = %v, want 2104", cs2.Max)
	}
	if cs2.Version != tbl.Version() {
		t.Errorf("snapshot version %d != table version %d", cs2.Version, tbl.Version())
	}
}

func TestRangeOrdinals(t *testing.T) {
	tbl := statsTable(t)
	ords, err := tbl.RangeOrdinals("year", Int(1970), Int(1972), true, true)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range tbl.Rows() {
		v := r[1]
		if v.IsNull() {
			continue
		}
		if v.AsInt() >= 1970 && v.AsInt() <= 1972 {
			want++
		}
	}
	if len(ords) != want {
		t.Errorf("range [1970,1972] = %d ordinals, want %d", len(ords), want)
	}
	for _, o := range ords {
		y := tbl.Row(o)[1]
		if y.IsNull() || y.AsInt() < 1970 || y.AsInt() > 1972 {
			t.Fatalf("ordinal %d outside range: %v", o, y)
		}
	}
	// Strict bounds drop the endpoints.
	strict, err := tbl.RangeOrdinals("year", Int(1970), Int(1972), false, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range strict {
		if y := tbl.Row(o)[1].AsInt(); y != 1971 {
			t.Fatalf("strict range returned year %d", y)
		}
	}
	// Unbounded sides.
	all, err := tbl.RangeOrdinals("year", Null(), Null(), true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 363 {
		t.Errorf("unbounded range = %d ordinals, want 363 non-NULL", len(all))
	}
	// Empty interval.
	empty, err := tbl.RangeOrdinals("year", Int(3000), Int(4000), true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("empty interval returned %d ordinals", len(empty))
	}
	if _, err := tbl.RangeOrdinals("nope", Null(), Null(), true, true); err == nil {
		t.Error("unknown column must error")
	}
}

// TestSortedIndexStaleVersionRebuild: with incremental maintenance off, a
// sorted index built before an Insert must be rebuilt on next use, so range
// scans never miss new rows (the rebuild-per-write baseline).
func TestSortedIndexStaleVersionRebuild(t *testing.T) {
	defer SetIncrementalMaintenance(SetIncrementalMaintenance(false))
	tbl := statsTable(t)
	if _, err := tbl.RangeOrdinals("year", Int(2100), Null(), true, true); err != nil {
		t.Fatal(err)
	}
	if !tbl.HasSortedIndex("year") {
		t.Fatal("sorted index not built")
	}
	builds := tbl.SortedIndexBuildCount()
	tbl.MustInsert(Row{Int(9999), Int(2150), String_("scifi")})
	if tbl.HasSortedIndex("year") {
		t.Error("stale sorted index must not report as up to date")
	}
	ords, err := tbl.RangeOrdinals("year", Int(2100), Null(), true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ords) != 1 {
		t.Fatalf("post-insert range = %d ordinals, want the new row", len(ords))
	}
	if tbl.SortedIndexBuildCount() != builds+1 {
		t.Errorf("build count = %d, want %d (one rebuild)", tbl.SortedIndexBuildCount(), builds+1)
	}
}

// TestSortedIndexSideRun: with incremental maintenance on (the default),
// inserts land in a sorted side-run instead of invalidating the index —
// range scans merge the runs on read, no rebuild happens until the run
// outgrows SortedSideRunThreshold, and results never miss a row.
func TestSortedIndexSideRun(t *testing.T) {
	tbl := statsTable(t)
	if _, err := tbl.RangeOrdinals("year", Int(1970), Int(1980), true, true); err != nil {
		t.Fatal(err)
	}
	builds := tbl.SortedIndexBuildCount()
	tbl.MustInsert(Row{Int(9999), Int(2150), String_("scifi")})
	if !tbl.HasSortedIndex("year") {
		t.Error("side-run-maintained index must stay up to date across Insert")
	}
	ords, err := tbl.RangeOrdinals("year", Int(2100), Null(), true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ords) != 1 || tbl.Row(ords[0])[1].AsInt() != 2150 {
		t.Fatalf("post-insert range = %v, want the new row", ords)
	}
	if got := tbl.SortedIndexBuildCount(); got != builds {
		t.Errorf("build count = %d, want %d (no rebuild within the side-run budget)", got, builds)
	}
	// Interleaved range results stay ordered by (value, ordinal) when both
	// runs contribute.
	tbl.MustInsert(Row{Int(10000), Int(1975), String_("drama")})
	mixed, err := tbl.RangeOrdinals("year", Int(1974), Int(1976), true, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i, o := range mixed {
		y := tbl.Row(o)[1]
		if y.IsNull() || y.AsInt() < 1974 || y.AsInt() > 1976 {
			t.Fatalf("ordinal %d outside range: %v", o, y)
		}
		if i > 0 {
			prev := tbl.Row(mixed[i-1])[1]
			if c := Compare(prev, y); c > 0 || (c == 0 && mixed[i-1] > o) {
				t.Fatalf("merged range out of (value, ordinal) order at %d", i)
			}
		}
		if o == tbl.Len()-1 {
			found = true
		}
	}
	if !found {
		t.Error("merged range missed the side-run row")
	}
	if tbl.MaintenanceStats().SortedIndexMerges == 0 {
		t.Error("read-time merge not counted")
	}
	// Overflow the side-run: the collapse counts as one rebuild and the
	// index stays current.
	for i := 0; i <= SortedSideRunThreshold; i++ {
		tbl.MustInsert(Row{Int(int64(20000 + i)), Int(int64(1960 + i%50)), String_("drama")})
	}
	if got := tbl.SortedIndexBuildCount(); got != builds+1 {
		t.Errorf("build count after overflow = %d, want %d (one collapse)", got, builds+1)
	}
	if !tbl.HasSortedIndex("year") {
		t.Error("index must stay current after side-run collapse")
	}
	all, err := tbl.RangeOrdinals("year", Null(), Null(), true, true)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range tbl.Rows() {
		if !r[1].IsNull() {
			want++
		}
	}
	if len(all) != want {
		t.Errorf("unbounded range after collapse = %d ordinals, want %d", len(all), want)
	}
}

// TestStatsIncrementalDelta: within the staleness budget Stats folds the
// insert delta into the base snapshot instead of rebuilding — exact
// rows/nulls/min/max, labeled budget-stale — and a budget-exceeding burst
// forces a fresh full rebuild.
func TestStatsIncrementalDelta(t *testing.T) {
	tbl := statsTable(t)
	cs0, err := tbl.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	if cs0.Freshness != StatsFresh {
		t.Errorf("initial freshness = %q, want %q", cs0.Freshness, StatsFresh)
	}
	builds := tbl.StatsBuildCount()
	for i := 0; i < 5; i++ {
		tbl.MustInsert(Row{Int(int64(5000 + i)), Int(int64(2200 + i)), String_("scifi")})
	}
	cs, err := tbl.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Freshness != StatsBudgetStale {
		t.Errorf("freshness = %q, want %q", cs.Freshness, StatsBudgetStale)
	}
	if tbl.StatsBuildCount() != builds {
		t.Errorf("stats builds = %d, want %d (delta fold, not rebuild)", tbl.StatsBuildCount(), builds)
	}
	if cs.Rows != cs0.Rows+5 || cs.NullCount != cs0.NullCount {
		t.Errorf("rows/nulls = %d/%d, want %d/%d", cs.Rows, cs.NullCount, cs0.Rows+5, cs0.NullCount)
	}
	if Compare(cs.Max, Int(2204)) != 0 || Compare(cs.Min, cs0.Min) != 0 {
		t.Errorf("min/max = %v/%v, want %v/2204", cs.Min, cs.Max, cs0.Min)
	}
	if cs.Distinct != cs0.Distinct+5 {
		t.Errorf("distinct = %d, want %d", cs.Distinct, cs0.Distinct+5)
	}
	if got := tbl.MaintenanceStats().StatsIncrementalUpdates; got == 0 {
		t.Error("incremental update not counted")
	}
	// Past the budget the next Stats call rebuilds from scratch.
	budget := StatsStalenessInserts
	if f := int(StatsStalenessFraction * float64(cs.Rows)); f > budget {
		budget = f
	}
	for i := 0; i <= budget; i++ {
		tbl.MustInsert(Row{Int(int64(6000 + i)), Int(int64(1960 + i%50)), String_("drama")})
	}
	cs2, err := tbl.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Freshness != StatsFresh {
		t.Errorf("post-budget freshness = %q, want %q", cs2.Freshness, StatsFresh)
	}
	if tbl.StatsBuildCount() != builds+1 {
		t.Errorf("stats builds = %d, want %d (budget exceeded forces rebuild)", tbl.StatsBuildCount(), builds+1)
	}
}

// TestStatsConcurrentWithInsert hammers Stats and RangeOrdinals against
// concurrent Inserts — run with -race. Every snapshot served must be
// internally consistent (rows ≥ nulls, min ≤ max) even while writes land.
func TestStatsConcurrentWithInsert(t *testing.T) {
	tbl := statsTable(t)
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			year := Value(Int(int64(1960 + i%80)))
			if i%13 == 0 {
				year = Null()
			}
			if err := tbl.Insert(Row{Int(int64(50000 + i)), year, String_("drama")}); err != nil {
				errc <- err
				return
			}
		}
		close(stop)
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cs, err := tbl.Stats([]string{"year", "genre"}[w%2])
				if err != nil {
					errc <- err
					return
				}
				if cs.Rows < cs.NullCount {
					errc <- fmt.Errorf("inconsistent snapshot: rows %d < nulls %d", cs.Rows, cs.NullCount)
					return
				}
				if cs.Rows > cs.NullCount && Compare(cs.Min, cs.Max) > 0 {
					errc <- fmt.Errorf("inconsistent snapshot: min %v > max %v", cs.Min, cs.Max)
					return
				}
				if _, err := tbl.RangeOrdinals("year", Int(1970), Int(1990), true, true); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// After the dust settles a final snapshot must be exact on the fields
	// the delta maintains exactly.
	cs, err := tbl.Stats("year")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Rows != tbl.Len() {
		t.Errorf("final rows = %d, want %d", cs.Rows, tbl.Len())
	}
}

// TestStatsConcurrentBuild: concurrent readers may trigger the same lazy
// stats/sorted-index build; run with -race.
func TestStatsConcurrentBuild(t *testing.T) {
	tbl := statsTable(t)
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := tbl.Stats([]string{"year", "genre"}[i%2]); err != nil {
					errc <- err
					return
				}
				if _, err := tbl.RangeOrdinals("year", Int(int64(1960+w)), Int(int64(1990+i)), true, true); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := tbl.StatsBuildCount(); got != 2 {
		t.Errorf("stats builds = %d, want 2 (one per column, no duplicate builds)", got)
	}
}

var _ = fmt.Sprint // keep fmt available for debugging edits
