package core
