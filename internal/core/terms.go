// Package core implements QUEST itself: the forward module (keyword →
// configurations via HMM list Viterbi decoding, in a-priori and
// feedback-based operating modes), the backward module (configurations →
// interpretations via top-k Steiner trees over the schema graph with
// mutual-information edge weights), the Dempster–Shafer combiner, the SQL
// query builder and the Search pipeline of Algorithm 1.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relational"
)

// TermKind classifies a database term: QUEST's HMM has one state per term.
type TermKind int

const (
	// KindTable marks a term naming a table ("show me *movies*").
	KindTable TermKind = iota
	// KindAttribute marks a term naming an attribute ("what *title* ...").
	KindAttribute
	// KindDomain marks a term denoting a value in an attribute's domain
	// ("movies with *spielberg*"): the keyword is data, not schema.
	KindDomain
)

// String implements fmt.Stringer.
func (k TermKind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindAttribute:
		return "attribute"
	case KindDomain:
		return "domain"
	}
	return fmt.Sprintf("TermKind(%d)", int(k))
}

// Term is one database term. Table terms have an empty Column.
type Term struct {
	Kind   TermKind
	Table  string
	Column string
}

// ID returns the canonical identity string of the term, used as DS
// hypothesis ids and map keys.
func (t Term) ID() string {
	switch t.Kind {
	case KindTable:
		return "T:" + strings.ToLower(t.Table)
	case KindAttribute:
		return "A:" + strings.ToLower(t.Table) + "." + strings.ToLower(t.Column)
	default:
		return "D:" + strings.ToLower(t.Table) + "." + strings.ToLower(t.Column)
	}
}

// String renders the term for humans.
func (t Term) String() string {
	switch t.Kind {
	case KindTable:
		return t.Table
	case KindAttribute:
		return t.Table + "." + t.Column
	default:
		return t.Table + "." + t.Column + "=?"
	}
}

// TermSpace is the enumerated state space of the HMM: every table, every
// attribute and every attribute domain of the schema, in deterministic
// order.
type TermSpace struct {
	Terms []Term
	index map[string]int
}

// NewTermSpace enumerates the terms of a schema.
func NewTermSpace(schema *relational.Schema) *TermSpace {
	ts := &TermSpace{index: make(map[string]int)}
	add := func(t Term) {
		ts.index[t.ID()] = len(ts.Terms)
		ts.Terms = append(ts.Terms, t)
	}
	for _, tbl := range schema.Tables() {
		add(Term{Kind: KindTable, Table: tbl.Name})
		for _, col := range tbl.Columns {
			add(Term{Kind: KindAttribute, Table: tbl.Name, Column: col.Name})
			add(Term{Kind: KindDomain, Table: tbl.Name, Column: col.Name})
		}
	}
	return ts
}

// Len returns the number of terms (HMM states).
func (ts *TermSpace) Len() int { return len(ts.Terms) }

// Index returns the state ordinal of a term, or -1.
func (ts *TermSpace) Index(t Term) int {
	if i, ok := ts.index[t.ID()]; ok {
		return i
	}
	return -1
}

// IndexOfID returns the state ordinal of a term id, or -1.
func (ts *TermSpace) IndexOfID(id string) int {
	if i, ok := ts.index[id]; ok {
		return i
	}
	return -1
}

// Names returns the term ids aligned with state ordinals (diagnostics).
func (ts *TermSpace) Names() []string {
	out := make([]string, len(ts.Terms))
	for i, t := range ts.Terms {
		out[i] = t.ID()
	}
	return out
}

// Configuration maps each keyword of the query to a database term — the
// forward step's output unit (one decoded HMM state sequence).
type Configuration struct {
	Keywords []string
	Terms    []Term
	// Score is the (linear-scale) probability-like confidence assigned by
	// the producing mode; normalized during DS combination.
	Score float64
	// Mode records which operating mode produced the configuration
	// ("a-priori", "feedback", "combined").
	Mode string
}

// ID canonically identifies the keyword→term mapping (not the score), so
// the same configuration found by both modes combines as one DS hypothesis.
func (c *Configuration) ID() string {
	parts := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		parts[i] = t.ID()
	}
	return strings.Join(parts, "|")
}

// String renders the mapping for humans.
func (c *Configuration) String() string {
	parts := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		kw := "?"
		if i < len(c.Keywords) {
			kw = c.Keywords[i]
		}
		parts[i] = fmt.Sprintf("%s→%s", kw, t)
	}
	return strings.Join(parts, ", ")
}

// Tables returns the sorted distinct tables touched by the configuration.
func (c *Configuration) Tables() []string {
	set := make(map[string]bool)
	for _, t := range c.Terms {
		set[strings.ToLower(t.Table)] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// KeywordsFor returns the keywords mapped to the given term id.
func (c *Configuration) KeywordsFor(termID string) []string {
	var out []string
	for i, t := range c.Terms {
		if t.ID() == termID && i < len(c.Keywords) {
			out = append(out, c.Keywords[i])
		}
	}
	return out
}

// Tokenize splits a raw keyword query into keywords: whitespace-separated,
// with double-quoted phrases kept as single multi-word keywords
// (`"new york" population` → ["new york", "population"]).
func Tokenize(query string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range query {
		switch {
		case r == '"':
			if inQuote {
				flush()
			}
			inQuote = !inQuote
		case !inQuote && (r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == ','):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}
