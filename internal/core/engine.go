package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ds"
	"repro/internal/ontology"
	"repro/internal/sql"
	"repro/internal/wrapper"
)

// Uncertainty carries the four Dempster–Shafer ignorance degrees of
// Algorithm 1: OCap and OCf weight the two forward operating modes, OC and
// OI weight the forward and backward approaches in the final combination.
// Each value is the mass committed to "this source may be wrong" — raising
// OCf, for example, makes the feedback mode count less.
type Uncertainty struct {
	OCap float64 // a-priori configurations
	OCf  float64 // feedback configurations
	OC   float64 // combined configurations (forward approach)
	OI   float64 // interpretations (backward approach)
}

// DefaultUncertainty returns the cold-start setting the paper recommends:
// with little feedback available the feedback mode is unreliable, so OCf
// starts high and OCap low.
func DefaultUncertainty() Uncertainty {
	return Uncertainty{OCap: 0.2, OCf: 0.8, OC: 0.3, OI: 0.3}
}

// AdaptUncertainty implements the paper's adaptation rule ("as the amount
// of feedbacks increases, the related parameter OCf must be incremented
// [trusted more]; ... when QUEST is used to query a new database, little
// feedback is available [so] OCap must be increased"): the feedback mode's
// ignorance decays exponentially with the number of validated searches
// while the a-priori mode's ignorance grows toward a ceiling. OC and OI
// are left untouched.
//
// With no feedback the result matches DefaultUncertainty; after ~10
// validated searches the two modes trade places.
func AdaptUncertainty(u Uncertainty, feedbackCount int) Uncertainty {
	if feedbackCount < 0 {
		feedbackCount = 0
	}
	decay := math.Exp(-float64(feedbackCount) / 5)
	u.OCf = 0.1 + 0.7*decay  // 0.8 cold → 0.1 fully warm
	u.OCap = 0.8 - 0.6*decay // 0.2 cold → 0.8 fully warm
	return u
}

// Options configures an Engine.
type Options struct {
	// K is the number of explanations returned (and the k used for the
	// intermediate top-k decodings), Algorithm 1's "maximum number of
	// results".
	K int
	// Uncertainty holds the DS ignorance degrees.
	Uncertainty Uncertainty
	// Backward tunes the backward module (MI weights, dedup).
	Backward BackwardOptions
	// Thesaurus provides ontology evidence; nil uses an empty thesaurus.
	Thesaurus *ontology.Thesaurus
	// UseLike makes the query builder emit LIKE instead of MATCH.
	UseLike bool
	// ResultLimit bounds tuples per generated SQL query (0 = unlimited).
	ResultLimit int
	// DisableApriori/DisableFeedback turn off one forward operating mode
	// (experiment E2/E5 ablations; both false in normal operation).
	DisableApriori  bool
	DisableFeedback bool
	// PruneEmpty executes each candidate explanation and drops those whose
	// SQL returns no tuples, re-normalizing beliefs over the survivors.
	// This is an extension beyond the paper (which relies on MI weights
	// alone to avoid empty join paths): it trades one query execution per
	// candidate for a guarantee the user never sees an empty answer.
	// Requires a source with an execution endpoint.
	PruneEmpty bool
}

// DefaultOptions returns the standard engine configuration.
func DefaultOptions() Options {
	return Options{
		K:           10,
		Uncertainty: DefaultUncertainty(),
		Backward:    DefaultBackwardOptions(),
	}
}

// Engine is the assembled QUEST system over one source.
type Engine struct {
	source           wrapper.Source
	opts             Options
	forward          *Forward
	backward         *Backward
	builder          *QueryBuilder
	autoAdapt        bool
	negativeFeedback int
}

// NewEngine wires the forward module, backward module and query builder for
// a source (the setup phase).
func NewEngine(src wrapper.Source, opts Options) *Engine {
	if opts.K <= 0 {
		opts.K = 10
	}
	thes := opts.Thesaurus
	if thes == nil {
		thes = ontology.NewThesaurus()
	}
	e := &Engine{
		source:   src,
		opts:     opts,
		forward:  NewForward(src, thes),
		backward: NewBackward(src, opts.Backward),
	}
	e.builder = NewQueryBuilder(src.Schema())
	e.builder.UseLike = opts.UseLike
	e.builder.Limit = opts.ResultLimit
	return e
}

// Forward exposes the forward module (feedback training, experiments).
func (e *Engine) Forward() *Forward { return e.forward }

// Backward exposes the backward module (experiments, visualization).
func (e *Engine) Backward() *Backward { return e.backward }

// Source exposes the wrapped source.
func (e *Engine) Source() wrapper.Source { return e.source }

// Options returns a copy of the engine options.
func (e *Engine) Options() Options { return e.opts }

// SetUncertainty adjusts the DS ignorance degrees at run time — the
// adaptation knob the demonstration's fourth message is about.
func (e *Engine) SetUncertainty(u Uncertainty) { e.opts.Uncertainty = u }

// AddFeedback incorporates user-validated configurations into the feedback
// HMM. When AutoAdapt has been enabled the DS uncertainties are re-derived
// from the accumulated feedback count afterwards.
func (e *Engine) AddFeedback(validated []*Configuration) {
	e.forward.AddFeedback(validated)
	if e.autoAdapt {
		e.opts.Uncertainty = AdaptUncertainty(e.opts.Uncertainty, e.effectiveFeedback())
	}
}

// AutoAdapt enables (or disables) automatic re-derivation of the forward
// uncertainties from the feedback volume on every AddFeedback call.
func (e *Engine) AutoAdapt(on bool) {
	e.autoAdapt = on
	if on {
		e.opts.Uncertainty = AdaptUncertainty(e.opts.Uncertainty, e.effectiveFeedback())
	}
}

// AddNegativeFeedback records that the user rejected the system's
// interpretations of n searches. Following the paper ("this same parameter
// should be decreased when 'negative' feedbacks are obtained in order to
// re-configure the system accordingly"), negative feedback lowers the
// effective feedback count used by the adaptation rule, shifting trust back
// toward the a-priori mode. It does not modify the trained model — the
// validated history remains correct; what negative feedback signals is that
// the history does not generalize to current queries.
func (e *Engine) AddNegativeFeedback(n int) {
	if n <= 0 {
		return
	}
	e.negativeFeedback += n
	if e.autoAdapt {
		e.opts.Uncertainty = AdaptUncertainty(e.opts.Uncertainty, e.effectiveFeedback())
	}
}

// effectiveFeedback is the adaptation count: validated searches minus
// rejections, floored at zero.
func (e *Engine) effectiveFeedback() int {
	n := e.forward.FeedbackCount() - e.negativeFeedback
	if n < 0 {
		return 0
	}
	return n
}

// Configurations runs only the forward step (both modes + DS combination)
// and returns the combined top-k configurations — exposed separately so the
// demonstration can show each module's partial results.
func (e *Engine) Configurations(keywords []string) ([]*Configuration, error) {
	k := e.opts.K
	var cap_, cf []*Configuration
	if !e.opts.DisableApriori {
		cap_ = e.forward.TopKApriori(keywords, k)
	}
	if !e.opts.DisableFeedback {
		cf = e.forward.TopKFeedback(keywords, k)
	}
	switch {
	case len(cap_) == 0 && len(cf) == 0:
		return nil, nil
	case len(cap_) == 0:
		return cf, nil
	case len(cf) == 0:
		return cap_, nil
	}

	// DS combination of the two operating modes (first CombinerDST of
	// Algorithm 1). The union of both top-k sets is the frame.
	byID := make(map[string]*Configuration)
	var ev1, ev2 []ds.Evidence
	for _, c := range cap_ {
		byID[c.ID()] = c
		ev1 = append(ev1, ds.Evidence{Hypothesis: c.ID(), Score: c.Score})
	}
	for _, c := range cf {
		if _, ok := byID[c.ID()]; !ok {
			byID[c.ID()] = c
		}
		ev2 = append(ev2, ds.Evidence{Hypothesis: c.ID(), Score: c.Score})
	}
	ranked, err := ds.CombineScores(ev1, e.opts.Uncertainty.OCap, ev2, e.opts.Uncertainty.OCf)
	if err != nil {
		return nil, fmt.Errorf("core: combining forward modes: %w", err)
	}
	out := make([]*Configuration, 0, len(ranked))
	for _, r := range ranked {
		c := byID[r.Hypothesis]
		out = append(out, &Configuration{
			Keywords: c.Keywords,
			Terms:    c.Terms,
			Score:    r.Belief,
			Mode:     "combined",
		})
	}
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// Interpretations runs the backward step for a set of configurations,
// returning all candidate interpretations (each configuration contributes
// up to k).
func (e *Engine) Interpretations(configs []*Configuration) ([]*Interpretation, error) {
	var out []*Interpretation
	for _, c := range configs {
		ins, err := e.backward.TopK(c, e.opts.K)
		if err != nil {
			return nil, err
		}
		out = append(out, ins...)
	}
	return out, nil
}

// Search is Algorithm 1: keywords → configurations (two modes, DS) →
// interpretations (Steiner) → explanations (DS) → SQL.
func (e *Engine) Search(query string) ([]*Explanation, error) {
	keywords := Tokenize(query)
	if len(keywords) == 0 {
		return nil, fmt.Errorf("core: empty keyword query")
	}
	configs, err := e.Configurations(keywords)
	if err != nil {
		return nil, err
	}
	if len(configs) == 0 {
		return nil, nil
	}
	interps, err := e.Interpretations(configs)
	if err != nil {
		return nil, err
	}
	if len(interps) == 0 {
		return nil, nil
	}
	return e.Explain(configs, interps)
}

// Explain performs the final DS combination between the forward evidence
// (configuration beliefs) and the backward evidence (interpretation
// scores), producing ranked explanations with built SQL. Exposed so
// experiments can recombine partial results under different uncertainties
// without recomputing the expensive steps.
func (e *Engine) Explain(configs []*Configuration, interps []*Interpretation) ([]*Explanation, error) {
	configBelief := make(map[string]float64, len(configs))
	for _, c := range configs {
		configBelief[c.ID()] = c.Score
	}

	// Frame of discernment: candidate explanations = interpretations. The
	// forward source supports an explanation through its configuration's
	// belief; the backward source through the interpretation score.
	byID := make(map[string]*Interpretation, len(interps))
	var evForward, evBackward []ds.Evidence
	for _, in := range interps {
		id := in.ID()
		if _, dup := byID[id]; dup {
			continue
		}
		byID[id] = in
		evForward = append(evForward, ds.Evidence{Hypothesis: id, Score: configBelief[in.Config.ID()]})
		evBackward = append(evBackward, ds.Evidence{Hypothesis: id, Score: in.Score})
	}
	ranked, err := ds.CombineScores(evForward, e.opts.Uncertainty.OC, evBackward, e.opts.Uncertainty.OI)
	if err != nil {
		return nil, fmt.Errorf("core: combining forward and backward: %w", err)
	}

	out := make([]*Explanation, 0, e.opts.K)
	for _, r := range ranked {
		if len(out) >= e.opts.K {
			break
		}
		in := byID[r.Hypothesis]
		stmt, err := e.builder.Build(in)
		if err != nil {
			// Unbuildable interpretation (disconnected tree): skip rather
			// than fail the whole search.
			continue
		}
		out = append(out, &Explanation{
			Config:         in.Config,
			Interpretation: in,
			Belief:         r.Belief,
			Stmt:           stmt,
			SQL:            stmt.SQL(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Belief != out[j].Belief {
			return out[i].Belief > out[j].Belief
		}
		return out[i].ID() < out[j].ID()
	})
	if e.opts.PruneEmpty {
		out = e.pruneEmpty(out)
	}
	return out, nil
}

// pruneEmpty drops explanations whose execution yields no tuples and
// renormalizes the surviving beliefs to their previous total mass.
func (e *Engine) pruneEmpty(in []*Explanation) []*Explanation {
	kept := in[:0]
	totalBefore, totalKept := 0.0, 0.0
	for _, ex := range in {
		totalBefore += ex.Belief
		res, err := e.source.Execute(ex.Stmt)
		if err != nil || len(res.Rows) == 0 {
			continue
		}
		kept = append(kept, ex)
		totalKept += ex.Belief
	}
	if totalKept > 0 && totalBefore > 0 {
		scale := totalBefore / totalKept
		for _, ex := range kept {
			ex.Belief *= scale
		}
	}
	return kept
}

// Execute runs an explanation's SQL through the source's wrapper.
func (e *Engine) Execute(ex *Explanation) (*sql.Result, error) {
	return e.source.Execute(ex.Stmt)
}
