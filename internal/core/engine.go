package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/ds"
	"repro/internal/hmm"
	"repro/internal/ontology"
	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/steiner"
	"repro/internal/wrapper"
)

// Uncertainty carries the four Dempster–Shafer ignorance degrees of
// Algorithm 1: OCap and OCf weight the two forward operating modes, OC and
// OI weight the forward and backward approaches in the final combination.
// Each value is the mass committed to "this source may be wrong" — raising
// OCf, for example, makes the feedback mode count less.
type Uncertainty struct {
	OCap float64 // a-priori configurations
	OCf  float64 // feedback configurations
	OC   float64 // combined configurations (forward approach)
	OI   float64 // interpretations (backward approach)
}

// DefaultUncertainty returns the cold-start setting the paper recommends:
// with little feedback available the feedback mode is unreliable, so OCf
// starts high and OCap low.
func DefaultUncertainty() Uncertainty {
	return Uncertainty{OCap: 0.2, OCf: 0.8, OC: 0.3, OI: 0.3}
}

// AdaptUncertainty implements the paper's adaptation rule ("as the amount
// of feedbacks increases, the related parameter OCf must be incremented
// [trusted more]; ... when QUEST is used to query a new database, little
// feedback is available [so] OCap must be increased"): the feedback mode's
// ignorance decays exponentially with the number of validated searches
// while the a-priori mode's ignorance grows toward a ceiling. OC and OI
// are left untouched.
//
// With no feedback the result matches DefaultUncertainty; after ~10
// validated searches the two modes trade places.
func AdaptUncertainty(u Uncertainty, feedbackCount int) Uncertainty {
	if feedbackCount < 0 {
		feedbackCount = 0
	}
	decay := math.Exp(-float64(feedbackCount) / 5)
	u.OCf = 0.1 + 0.7*decay  // 0.8 cold → 0.1 fully warm
	u.OCap = 0.8 - 0.6*decay // 0.2 cold → 0.8 fully warm
	return u
}

// Options configures an Engine.
type Options struct {
	// K is the number of explanations returned (and the k used for the
	// intermediate top-k decodings), Algorithm 1's "maximum number of
	// results".
	K int
	// Uncertainty holds the DS ignorance degrees.
	Uncertainty Uncertainty
	// Backward tunes the backward module (MI weights, dedup).
	Backward BackwardOptions
	// Thesaurus provides ontology evidence; nil uses an empty thesaurus.
	Thesaurus *ontology.Thesaurus
	// UseLike makes the query builder emit LIKE instead of MATCH.
	UseLike bool
	// ResultLimit bounds tuples per generated SQL query (0 = unlimited).
	ResultLimit int
	// DisableApriori/DisableFeedback turn off one forward operating mode
	// (experiment E2/E5 ablations; both false in normal operation).
	DisableApriori  bool
	DisableFeedback bool
	// PruneEmpty executes each candidate explanation and drops those whose
	// SQL returns no tuples, re-normalizing beliefs over the survivors.
	// This is an extension beyond the paper (which relies on MI weights
	// alone to avoid empty join paths): it trades one query execution per
	// candidate for a guarantee the user never sees an empty answer.
	// Requires a source with an execution endpoint. The validation queries
	// run concurrently only when the source declares its Execute safe for
	// concurrent use (wrapper.ConcurrentExecutor — true for the built-in
	// sources) or, for sources that don't implement that marker, when
	// Parallelism is explicitly set above 1; in every other case the
	// engine serializes its Execute calls, so custom endpoints are never
	// raced unless they opt in.
	PruneEmpty bool
	// Parallelism bounds the worker goroutines used by the engine's fan-out
	// points: per-terminal-set Steiner decoding in Interpretations and
	// candidate SQL execution in PruneEmpty. Both stages preserve the exact
	// result order of the sequential path, and the budget is shared across
	// all concurrent calls on the engine (P in-flight searches still run at
	// most Parallelism workers in total). 0 selects runtime.GOMAXPROCS(0);
	// 1 forces sequential execution. Setting a value above 1 also opts a
	// non-ConcurrentExecutor source into parallel PruneEmpty validation —
	// only do that when its Execute is goroutine-safe.
	Parallelism int
	// QueryCacheSize caps the engine's query→explanations LRU (entries).
	// Entries are keyed on the tokenized keywords plus the engine's cache
	// epoch; any state change that could alter results (feedback,
	// uncertainty updates) bumps the epoch, making stale entries
	// unreachable until they age out of the LRU. All other result-shaping
	// options are immutable after construction — any future run-time
	// setter for one of them must bump the epoch too. 0 selects
	// DefaultQueryCacheSize; a negative value disables the cache.
	QueryCacheSize int
}

// DefaultQueryCacheSize is the query-cache capacity used when
// Options.QueryCacheSize is 0.
const DefaultQueryCacheSize = 256

// DefaultOptions returns the standard engine configuration.
func DefaultOptions() Options {
	return Options{
		K:           10,
		Uncertainty: DefaultUncertainty(),
		Backward:    DefaultBackwardOptions(),
	}
}

// Engine is the assembled QUEST system over one source.
//
// Engine is safe for concurrent use: any number of goroutines may call
// Search, Configurations, Interpretations, Explain and Execute while others
// call AddFeedback, AddNegativeFeedback, SetUncertainty or AutoAdapt.
// Mutations invalidate the query cache by bumping an internal epoch
// counter; in-flight searches complete against the state they started with.
type Engine struct {
	source   wrapper.Source
	forward  *Forward
	backward *Backward
	builder  *QueryBuilder

	// mu guards the mutable engine state below. The heavy pipeline stages
	// run outside the lock against the immutable modules.
	mu               sync.RWMutex
	opts             Options
	autoAdapt        bool
	negativeFeedback int
	// epoch counts result-affecting state changes; it is part of every
	// query-cache key, so a bump makes all previous entries unreachable.
	epoch uint64

	// queryCache maps (epoch, keywords) to the final ranked explanations
	// plus the per-table versions they were computed at; nil when disabled.
	// All other result-shaping options are immutable after construction
	// (only SetUncertainty mutates, and it bumps the epoch), so the
	// keywords plus the epoch identify a result exactly — modulo data
	// mutations, which are validated per entry against the versions of the
	// tables that entry actually touches (see cachedSearch), not with a
	// global flush.
	queryCache *cache.LRU[string, *cachedSearch]

	// workerSem bounds the total spawned fan-out workers across ALL
	// concurrent pipeline calls on this engine at Parallelism, so P
	// in-flight searches share one budget instead of spawning
	// P×Parallelism runnable goroutines. (Work that runs inline on a
	// caller's own goroutine — the workers<=1 path — is not counted.)
	workerSem chan struct{}

	// execSafe records whether the source declared Execute safe for
	// concurrent use; when false, the engine serializes its own Execute
	// calls through execMu so concurrent searches never race a custom
	// endpoint.
	execSafe bool
	execMu   sync.Mutex
}

// NewEngine wires the forward module, backward module and query builder for
// a source (the setup phase).
func NewEngine(src wrapper.Source, opts Options) *Engine {
	if opts.K <= 0 {
		opts.K = 10
	}
	thes := opts.Thesaurus
	if thes == nil {
		thes = ontology.NewThesaurus()
	}
	e := &Engine{
		source:   src,
		opts:     opts,
		forward:  NewForward(src, thes),
		backward: NewBackward(src, opts.Backward),
	}
	e.builder = NewQueryBuilder(src.Schema())
	e.builder.UseLike = opts.UseLike
	e.builder.Limit = opts.ResultLimit
	size := opts.QueryCacheSize
	if size == 0 {
		size = DefaultQueryCacheSize
	}
	e.queryCache = cache.New[string, *cachedSearch](size) // nil (disabled) when size < 0
	budget := opts.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	e.workerSem = make(chan struct{}, budget)
	if ce, ok := src.(wrapper.ConcurrentExecutor); ok {
		// A source that implements the marker knows its own endpoint; its
		// answer wins either way (an explicit false is not overridden by
		// Parallelism — use MetadataSource.SetConcurrentSafe for a safe
		// custom endpoint).
		e.execSafe = ce.ExecutesConcurrently()
	} else {
		// For sources that don't implement the marker, an explicit
		// Parallelism > 1 is the documented assertion that Execute
		// tolerates concurrent calls.
		e.execSafe = opts.Parallelism > 1
	}
	return e
}

// pipelineState is one consistent view of everything that shapes a search:
// the options (including uncertainties), the cache epoch they belong to,
// and the two forward models (immutable snapshots; training swaps pointers
// rather than mutating). Taken atomically under the engine lock — every
// engine mutator holds the write lock for its whole mutation — so a search
// running against one pipelineState cannot observe a half-applied change.
type pipelineState struct {
	opts     Options
	epoch    uint64
	apriori  *hmm.Model
	feedback *hmm.Model
}

// snapshot captures the current pipeline state. Lock order is e.mu → f.mu.
func (e *Engine) snapshot() pipelineState {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ap, fb := e.forward.models()
	return pipelineState{opts: e.opts, epoch: e.epoch, apriori: ap, feedback: fb}
}

// parallelism resolves the effective worker count for n independent items.
func parallelism(opt int, n int) int {
	p := opt
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// forEachParallel runs fn(i) for i in [0, n) across a bounded worker pool.
// With one worker it degrades to a plain loop (no goroutines). Each unit of
// work additionally acquires a slot from the engine-wide semaphore, so the
// number of simultaneously running fn bodies across all concurrent callers
// never exceeds the engine's Parallelism budget. fn must write results into
// per-index slots; the pool provides no other synchronization.
func (e *Engine) forEachParallel(n, workers int, fn func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				e.workerSem <- struct{}{}
				fn(i)
				<-e.workerSem
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// bumpEpoch invalidates all cached query results. Callers must hold e.mu.
func (e *Engine) bumpEpochLocked() { e.epoch++ }

// InvalidateCaches makes every cached query result unreachable. It is
// called automatically by the engine's own mutators; call it manually after
// mutating the forward module directly (e.g. Forward().RetrainEM or
// LoadFeedback), which the engine cannot observe.
func (e *Engine) InvalidateCaches() {
	e.mu.Lock()
	e.bumpEpochLocked()
	e.mu.Unlock()
}

// Forward exposes the forward module (feedback training, experiments).
func (e *Engine) Forward() *Forward { return e.forward }

// Backward exposes the backward module (experiments, visualization).
func (e *Engine) Backward() *Backward { return e.backward }

// Source exposes the wrapped source.
func (e *Engine) Source() wrapper.Source { return e.source }

// Options returns a copy of the engine options.
func (e *Engine) Options() Options {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts
}

// SetUncertainty adjusts the DS ignorance degrees at run time — the
// adaptation knob the demonstration's fourth message is about. The query
// cache is invalidated (epoch bump).
func (e *Engine) SetUncertainty(u Uncertainty) {
	e.mu.Lock()
	e.opts.Uncertainty = u
	e.bumpEpochLocked()
	e.mu.Unlock()
}

// AddFeedback incorporates user-validated configurations into the feedback
// HMM. When AutoAdapt has been enabled the DS uncertainties are re-derived
// from the accumulated feedback count afterwards. The query cache is
// invalidated (epoch bump). The expensive model re-estimation runs before
// the engine lock is taken — concurrent searches are not stalled by
// training — while the publication (model swap + uncertainty update +
// epoch bump) is atomic under the lock, so snapshots see either none or
// all of it.
func (e *Engine) AddFeedback(validated []*Configuration) {
	m, n := e.forward.prepareFeedback(validated)
	if m == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.forward.publishFeedback(m, n)
	if e.autoAdapt {
		e.opts.Uncertainty = AdaptUncertainty(e.opts.Uncertainty, e.effectiveFeedbackLocked())
	}
	e.bumpEpochLocked()
}

// AutoAdapt enables (or disables) automatic re-derivation of the forward
// uncertainties from the feedback volume on every AddFeedback call.
func (e *Engine) AutoAdapt(on bool) {
	e.mu.Lock()
	e.autoAdapt = on
	if on {
		e.opts.Uncertainty = AdaptUncertainty(e.opts.Uncertainty, e.effectiveFeedbackLocked())
	}
	e.bumpEpochLocked()
	e.mu.Unlock()
}

// AddNegativeFeedback records that the user rejected the system's
// interpretations of n searches. Following the paper ("this same parameter
// should be decreased when 'negative' feedbacks are obtained in order to
// re-configure the system accordingly"), negative feedback lowers the
// effective feedback count used by the adaptation rule, shifting trust back
// toward the a-priori mode. It does not modify the trained model — the
// validated history remains correct; what negative feedback signals is that
// the history does not generalize to current queries.
func (e *Engine) AddNegativeFeedback(n int) {
	if n <= 0 {
		return
	}
	e.mu.Lock()
	e.negativeFeedback += n
	if e.autoAdapt {
		e.opts.Uncertainty = AdaptUncertainty(e.opts.Uncertainty, e.effectiveFeedbackLocked())
	}
	e.bumpEpochLocked()
	e.mu.Unlock()
}

// effectiveFeedbackLocked is the adaptation count: validated searches minus
// rejections, floored at zero. Callers must hold e.mu.
func (e *Engine) effectiveFeedbackLocked() int {
	n := e.forward.FeedbackCount() - e.negativeFeedback
	if n < 0 {
		return 0
	}
	return n
}

// Configurations runs only the forward step (both modes + DS combination)
// and returns the combined top-k configurations — exposed separately so the
// demonstration can show each module's partial results.
func (e *Engine) Configurations(keywords []string) ([]*Configuration, error) {
	return e.configurationsWith(e.snapshot(), keywords)
}

// configurationsWith is Configurations against one consistent pipeline
// snapshot: both modes decode the models captured at snapshot time, so a
// concurrent retrain cannot produce a ranking that mixes model versions.
func (e *Engine) configurationsWith(st pipelineState, keywords []string) ([]*Configuration, error) {
	opts := st.opts
	k := opts.K
	var cap_, cf []*Configuration
	if !opts.DisableApriori {
		cap_ = e.forward.decode(st.apriori, keywords, k, "a-priori")
	}
	if !opts.DisableFeedback {
		cf = e.forward.decode(st.feedback, keywords, k, "feedback")
	}
	switch {
	case len(cap_) == 0 && len(cf) == 0:
		return nil, nil
	case len(cap_) == 0:
		return cf, nil
	case len(cf) == 0:
		return cap_, nil
	}

	// DS combination of the two operating modes (first CombinerDST of
	// Algorithm 1). The union of both top-k sets is the frame.
	byID := make(map[string]*Configuration)
	var ev1, ev2 []ds.Evidence
	for _, c := range cap_ {
		byID[c.ID()] = c
		ev1 = append(ev1, ds.Evidence{Hypothesis: c.ID(), Score: c.Score})
	}
	for _, c := range cf {
		if _, ok := byID[c.ID()]; !ok {
			byID[c.ID()] = c
		}
		ev2 = append(ev2, ds.Evidence{Hypothesis: c.ID(), Score: c.Score})
	}
	ranked, err := ds.CombineScores(ev1, opts.Uncertainty.OCap, ev2, opts.Uncertainty.OCf)
	if err != nil {
		return nil, fmt.Errorf("core: combining forward modes: %w", err)
	}
	// Trim early: ranked is sorted by belief, so materializing past k
	// wastes allocations on configurations that are dropped immediately.
	outCap := len(ranked)
	if k < outCap {
		outCap = k
	}
	out := make([]*Configuration, 0, outCap)
	for _, r := range ranked {
		if len(out) == k {
			break
		}
		c := byID[r.Hypothesis]
		out = append(out, &Configuration{
			Keywords: c.Keywords,
			Terms:    c.Terms,
			Score:    r.Belief,
			Mode:     "combined",
		})
	}
	return out, nil
}

// Interpretations runs the backward step for a set of configurations,
// returning all candidate interpretations (each configuration contributes
// up to k).
//
// Configurations are independent, so their Steiner decodings fan out across
// a bounded worker pool (Options.Parallelism). Results are concatenated in
// configuration order, and on error the lowest-index error is returned, so
// output is identical to the sequential path.
func (e *Engine) Interpretations(configs []*Configuration) ([]*Interpretation, error) {
	return e.interpretationsWith(e.snapshot().opts, configs)
}

func (e *Engine) interpretationsWith(opts Options, configs []*Configuration) ([]*Interpretation, error) {
	k := opts.K

	// Distinct configurations routinely pin the same terminal set (same
	// attributes, different keywords). Group by terminal set first so each
	// Steiner enumeration — the expensive step — runs at most once per
	// search even when the group's members are dispatched concurrently,
	// then share the resulting trees across the group's configurations.
	type decodeGroup struct {
		terminals []string
		members   []int // config indices, ascending
	}
	groupOf := make(map[string]*decodeGroup)
	var groups []*decodeGroup
	termErrs := make([]error, len(configs))
	for i, c := range configs {
		terminals, err := e.backward.Terminals(c)
		if err != nil {
			termErrs[i] = err
			continue
		}
		key := strings.Join(terminals, ",")
		g := groupOf[key]
		if g == nil {
			g = &decodeGroup{terminals: terminals}
			groupOf[key] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, i)
	}

	trees := make([][]*steiner.Tree, len(groups))
	errs := make([]error, len(groups))
	e.forEachParallel(len(groups), parallelism(opts.Parallelism, len(groups)), func(gi int) {
		trees[gi], errs[gi] = e.backward.topKTrees(groups[gi].terminals, k)
	})

	// Report the lowest-config-index error, whether from terminal
	// resolution or decoding, matching the sequential path's determinism.
	perConfig := make([][]*Interpretation, len(configs))
	for gi, g := range groups {
		if errs[gi] != nil {
			termErrs[g.members[0]] = errs[gi]
			continue
		}
		for _, i := range g.members {
			perConfig[i] = e.backward.wrapTrees(configs[i], trees[gi])
		}
	}
	total := 0
	for i := range configs {
		if termErrs[i] != nil {
			return nil, termErrs[i]
		}
		total += len(perConfig[i])
	}
	out := make([]*Interpretation, 0, total)
	for _, ins := range perConfig {
		out = append(out, ins...)
	}
	return out, nil
}

// Search is Algorithm 1: keywords → configurations (two modes, DS) →
// interpretations (Steiner) → explanations (DS) → SQL.
//
// Results are cached in the engine's query cache (see
// Options.QueryCacheSize): a repeated query on an unchanged engine is a
// single LRU lookup. Cache entries are keyed on the tokenized keywords plus
// the cache epoch; AddFeedback, SetUncertainty and the other mutators bump
// the epoch, so no stale ranking is ever served.
// Hits return fresh shallow copies of the Explanation structs — callers may
// adjust Belief on their copies without poisoning the cache.
func (e *Engine) Search(query string) ([]*Explanation, error) {
	return e.SearchCtx(context.Background(), query)
}

// SearchCtx is Search bounded by a caller context — the deadline
// propagation entry point of the serving tier. The context is checked
// between pipeline stages and rides the PruneEmpty validation fan-out
// down into the source (a sharded source cancels its scatter-gather, a
// remote backend closes the in-flight connection), so a caller that gives
// up stops paying for shard work promptly. A cancelled search returns the
// context's error and is never cached — partial validation must not be
// served as a permanently thinner ranking.
func (e *Engine) SearchCtx(ctx context.Context, query string) ([]*Explanation, error) {
	keywords := Tokenize(query)
	if len(keywords) == 0 {
		return nil, fmt.Errorf("core: empty keyword query")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// One snapshot for the whole pipeline: a concurrent SetUncertainty or
	// AddFeedback mid-search cannot tear the result (options and models
	// are captured together), and the entry is stored under the epoch the
	// snapshot belongs to.
	st := e.snapshot()
	var key string
	var versions map[string]uint64
	if e.queryCache != nil {
		key = strconv.FormatUint(st.epoch, 10) + "\x00" + strings.Join(keywords, "\x1f")
		if hit, ok := e.queryCache.Get(key); ok && e.depsCurrent(hit.deps) {
			return copyExplanations(hit.exps), nil
		}
		// Capture table versions BEFORE the pipeline runs: if a write lands
		// mid-search, the stored entry validates as already stale rather
		// than serving pre-write results under a post-write version.
		versions = e.tableVersions()
	}
	configs, err := e.configurationsWith(st, keywords)
	if err != nil {
		return nil, err
	}
	var out []*Explanation
	var touched []string
	cacheable := true
	if len(configs) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		interps, err := e.interpretationsWith(st.opts, configs)
		if err != nil {
			return nil, err
		}
		if len(interps) > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out, touched, cacheable, err = e.explainCtx(ctx, st.opts, configs, interps)
			if err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		// The pipeline may have completed degraded under a context that
		// fired mid-validation; surface the cancellation rather than a
		// silently thinner ranking.
		return nil, err
	}
	if e.queryCache != nil && cacheable {
		// Store a private copy: the caller owns the returned slice and may
		// mutate beliefs in place.
		e.queryCache.Put(key, &cachedSearch{
			exps: copyExplanations(out),
			deps: depsFor(touched, versions),
		})
	}
	return out, nil
}

// cachedSearch is one query-cache entry: the ranked result plus the
// version of every table its candidate statements referenced, captured
// before the search ran. A hit is served only while those tables are
// unchanged — an insert can both add result tuples and resurrect
// candidates PruneEmpty dropped, so any referenced-table mutation makes
// the entry stale. Writes to unreferenced tables leave it servable:
// invalidation is scoped per table, not a global epoch flush.
type cachedSearch struct {
	exps []*Explanation
	deps map[string]uint64
}

// tableVersions snapshots every schema table's mutation counter through
// the source's TableVersioner face; nil when the source has none (then
// entries carry no deps and keep the legacy epoch-only lifetime).
func (e *Engine) tableVersions() map[string]uint64 {
	tv, ok := e.source.(wrapper.TableVersioner)
	if !ok {
		return nil
	}
	out := make(map[string]uint64)
	for _, ts := range e.source.Schema().Tables() {
		if v, ok := tv.TableVersion(ts.Name); ok {
			out[strings.ToLower(ts.Name)] = v
		}
	}
	return out
}

// depsFor restricts a pre-search version snapshot to the tables a search
// actually touched.
func depsFor(touched []string, versions map[string]uint64) map[string]uint64 {
	if len(touched) == 0 || versions == nil {
		return nil
	}
	deps := make(map[string]uint64, len(touched))
	for _, tbl := range touched {
		if v, ok := versions[strings.ToLower(tbl)]; ok {
			deps[strings.ToLower(tbl)] = v
		}
	}
	return deps
}

// depsCurrent reports whether every table a cached entry depends on is
// still at the version the entry was computed at. Entries without deps
// (no TableVersioner source, or a result that touched no tables) are
// always current.
func (e *Engine) depsCurrent(deps map[string]uint64) bool {
	if len(deps) == 0 {
		return true
	}
	tv, ok := e.source.(wrapper.TableVersioner)
	if !ok {
		return true
	}
	for tbl, v := range deps {
		if cur, ok := tv.TableVersion(tbl); ok && cur != v {
			return false
		}
	}
	return true
}

// copyExplanations shallow-copies a ranked result list. The Explanation
// structs are duplicated (so Belief stays isolated per caller); the deeper
// Config/Interpretation/Stmt objects are immutable after construction and
// remain shared.
func copyExplanations(in []*Explanation) []*Explanation {
	if in == nil {
		return nil
	}
	out := make([]*Explanation, len(in))
	for i, ex := range in {
		cp := *ex
		out[i] = &cp
	}
	return out
}

// Explain performs the final DS combination between the forward evidence
// (configuration beliefs) and the backward evidence (interpretation
// scores), producing ranked explanations with built SQL. Exposed so
// experiments can recombine partial results under different uncertainties
// without recomputing the expensive steps.
func (e *Engine) Explain(configs []*Configuration, interps []*Interpretation) ([]*Explanation, error) {
	out, _, _, err := e.explainCtx(context.Background(), e.snapshot().opts, configs, interps)
	return out, err
}

// explainCtx additionally reports the tables the top-k candidate
// statements reference — collected before PruneEmpty, because a pruned
// candidate can be resurrected by an insert and so still counts as a data
// dependency of the result — and whether the result is cacheable: a
// PruneEmpty pass degraded by transient Execute failures must not be
// cached, or a one-off endpoint outage would be served as a permanently
// thinner ranking until the next epoch bump. ctx bounds the PruneEmpty
// validation queries.
func (e *Engine) explainCtx(ctx context.Context, opts Options, configs []*Configuration, interps []*Interpretation) ([]*Explanation, []string, bool, error) {
	configBelief := make(map[string]float64, len(configs))
	for _, c := range configs {
		configBelief[c.ID()] = c.Score
	}

	// Frame of discernment: candidate explanations = interpretations. The
	// forward source supports an explanation through its configuration's
	// belief; the backward source through the interpretation score.
	byID := make(map[string]*Interpretation, len(interps))
	var evForward, evBackward []ds.Evidence
	for _, in := range interps {
		id := in.ID()
		if _, dup := byID[id]; dup {
			continue
		}
		byID[id] = in
		evForward = append(evForward, ds.Evidence{Hypothesis: id, Score: configBelief[in.Config.ID()]})
		evBackward = append(evBackward, ds.Evidence{Hypothesis: id, Score: in.Score})
	}
	ranked, err := ds.CombineScores(evForward, opts.Uncertainty.OC, evBackward, opts.Uncertainty.OI)
	if err != nil {
		return nil, nil, false, fmt.Errorf("core: combining forward and backward: %w", err)
	}

	// Trim early: never allocate past min(k, len(ranked)).
	outCap := len(ranked)
	if opts.K < outCap {
		outCap = opts.K
	}
	out := make([]*Explanation, 0, outCap)
	for _, r := range ranked {
		if len(out) >= opts.K {
			break
		}
		in := byID[r.Hypothesis]
		stmt, err := e.builder.Build(in)
		if err != nil {
			// Unbuildable interpretation (disconnected tree): skip rather
			// than fail the whole search.
			continue
		}
		out = append(out, &Explanation{
			Config:         in.Config,
			Interpretation: in,
			Belief:         r.Belief,
			Stmt:           stmt,
			SQL:            stmt.SQL(),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Belief != out[j].Belief {
			return out[i].Belief > out[j].Belief
		}
		return out[i].ID() < out[j].ID()
	})
	// Data dependencies, pre-prune: every table any surviving candidate's
	// SQL reads.
	seen := make(map[string]bool)
	var touched []string
	for _, ex := range out {
		for _, tr := range ex.Stmt.Tables() {
			k := strings.ToLower(tr.Table)
			if !seen[k] {
				seen[k] = true
				touched = append(touched, k)
			}
		}
	}
	cacheable := true
	if opts.PruneEmpty {
		out, cacheable = e.pruneEmpty(ctx, out, e.pruneWorkers(opts, len(out)))
	}
	return out, touched, cacheable, nil
}

// pruneWorkers resolves the validation-query concurrency. Unlike the
// engine-internal fan-out, these queries call into the source's Execute —
// possibly user-supplied endpoint code — so parallel execution requires
// either the source declaring itself concurrency-safe
// (wrapper.ConcurrentExecutor) or an explicit Parallelism > 1 opt-in;
// any Parallelism <= 1 (including negative values) stays sequential for
// unsafe sources.
func (e *Engine) pruneWorkers(opts Options, n int) int {
	if opts.Parallelism == 1 || !e.execSafe {
		return 1
	}
	return parallelism(opts.Parallelism, n)
}

// pruneEmpty drops explanations whose execution yields no tuples and
// renormalizes the surviving beliefs to their previous total mass. The
// validation queries are independent, so they run across a bounded worker
// pool; survivors keep their original rank order. Each validation runs in
// existence-only mode (wrapper.ExecuteExists): the source stops at the
// first surviving tuple instead of materializing the full result, so
// validation cost no longer scales with result size. The second return is
// false when any validation query failed (as opposed to returning zero
// tuples) — the pruning then reflects a transient condition and the caller
// must not cache it.
func (e *Engine) pruneEmpty(ctx context.Context, in []*Explanation, workers int) ([]*Explanation, bool) {
	keep := make([]bool, len(in))
	failed := make([]bool, len(in))
	e.forEachParallel(len(in), workers, func(i int) {
		ok, err := e.executeExists(ctx, in[i].Stmt)
		failed[i] = err != nil
		keep[i] = err == nil && ok
	})
	clean := true
	for _, f := range failed {
		if f {
			clean = false
			break
		}
	}

	kept := in[:0]
	totalBefore, totalKept := 0.0, 0.0
	for i, ex := range in {
		totalBefore += ex.Belief
		if !keep[i] {
			continue
		}
		kept = append(kept, ex)
		totalKept += ex.Belief
	}
	if totalKept > 0 && totalBefore > 0 {
		scale := totalBefore / totalKept
		for _, ex := range kept {
			ex.Belief *= scale
		}
	}
	return kept, clean
}

// Execute runs an explanation's SQL through the source's wrapper. The
// returned Result carries the execution plan the backend chose (access
// paths, join order, estimated vs actual cardinalities) when the source's
// executor exposes one.
func (e *Engine) Execute(ex *Explanation) (*sql.Result, error) {
	return e.execute(context.Background(), ex.Stmt)
}

// ExecuteCtx is Execute bounded by a caller context: the statement is
// dispatched through the source's context-aware execution face when it
// has one (wrapper.ContextExecutor — sharded and remote sources do), so
// cancellation reaches in-flight shard work.
func (e *Engine) ExecuteCtx(ctx context.Context, ex *Explanation) (*sql.Result, error) {
	return e.execute(ctx, ex.Stmt)
}

// RunSQL parses and executes one SELECT statement against the engine's
// source under a caller context — the serving tier's /v1/sql path. The
// same serialization rule as every engine-issued execution applies:
// sources that did not declare Execute concurrency-safe are never raced.
func (e *Engine) RunSQL(ctx context.Context, query string) (*sql.Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.execute(ctx, stmt)
}

// PlannerStats snapshots the SQL planning layer's counters — access-path
// and join-order decisions across every query this process executed
// (searches, validations, direct SQL). It is the engine-level view behind
// cmd/queststats' planner table.
func (e *Engine) PlannerStats() sql.PlannerStats {
	return sql.Stats()
}

// ColumnStatistics surfaces the source's per-column statistics snapshot.
// The engine does not care how the source produces it — the single-node
// wrapper reads its own tables, the sharded source merges per-shard
// summaries — it only requires the wrapper-level StatisticsProvider
// contract; sources without instance access report ErrNoInstanceAccess.
func (e *Engine) ColumnStatistics(table, column string) (*relational.ColumnStats, error) {
	if sp, ok := e.source.(wrapper.StatisticsProvider); ok {
		return sp.ColumnStatistics(table, column)
	}
	return nil, wrapper.ErrNoInstanceAccess
}

// Insert routes one row append through the source's write face
// (wrapper.Inserter) — the serving tier's /v1/insert path. Sources
// without the face are read-only and return an error. No cache flush
// happens here: the plan cache, the engine query cache and the serving
// tier's response cache all validate against per-table versions, so only
// entries that read the written table go stale.
func (e *Engine) Insert(table string, row relational.Row) error {
	ins, ok := e.source.(wrapper.Inserter)
	if !ok {
		return fmt.Errorf("core: source %s is read-only (no insert face)", e.source.Name())
	}
	if !e.execSafe {
		e.execMu.Lock()
		defer e.execMu.Unlock()
	}
	return ins.Insert(table, row)
}

// TableVersion surfaces the source's per-table mutation counter
// (wrapper.TableVersioner); ok is false when the source has no version
// face or the table is unknown. External caches (the serving tier's
// response cache) key entries on it.
func (e *Engine) TableVersion(table string) (uint64, bool) {
	if tv, ok := e.source.(wrapper.TableVersioner); ok {
		return tv.TableVersion(table)
	}
	return 0, false
}

// TableVersions snapshots every schema table's version, or nil when the
// source has no version face.
func (e *Engine) TableVersions() map[string]uint64 { return e.tableVersions() }

// execute routes a statement to the source, serializing the calls when the
// source did not declare Execute safe for concurrent use — the engine
// never races a custom endpoint, even from concurrent Searches.
func (e *Engine) execute(ctx context.Context, stmt *sql.SelectStmt) (*sql.Result, error) {
	if !e.execSafe {
		e.execMu.Lock()
		defer e.execMu.Unlock()
	}
	return wrapper.ExecuteContext(ctx, e.source, stmt)
}

// executeExists routes an existence-only validation query to the source,
// under the same serialization rule as execute.
func (e *Engine) executeExists(ctx context.Context, stmt *sql.SelectStmt) (bool, error) {
	if !e.execSafe {
		e.execMu.Lock()
		defer e.execMu.Unlock()
	}
	return wrapper.ExecuteExistsContext(ctx, e.source, stmt)
}
