package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/ontology"
	"repro/internal/sql"
	"repro/internal/wrapper"
)

// flakySource wraps a FullAccessSource and fails Execute while `failing` is
// set — a stand-in for a remote endpoint with a transient outage.
type flakySource struct {
	*wrapper.FullAccessSource
	failing atomic.Bool
}

func (s *flakySource) Execute(stmt *sql.SelectStmt) (*sql.Result, error) {
	if s.failing.Load() {
		return nil, errors.New("transient endpoint outage")
	}
	return s.FullAccessSource.Execute(stmt)
}

// ExecuteExists must model the outage too: the embedded FullAccessSource
// would otherwise answer existence probes straight from the database,
// promoting past the failure injection above.
func (s *flakySource) ExecuteExists(stmt *sql.SelectStmt) (bool, error) {
	if s.failing.Load() {
		return false, errors.New("transient endpoint outage")
	}
	return s.FullAccessSource.ExecuteExists(stmt)
}

var _ wrapper.Source = (*flakySource)(nil)
var _ wrapper.ExistsExecutor = (*flakySource)(nil)

// TestPruneFailureNotCached ensures a search whose PruneEmpty validation
// queries fail is NOT stored in the query cache: once the source recovers,
// a repeat of the same query must return the full ranking again.
func TestPruneFailureNotCached(t *testing.T) {
	db := fixtureDB(t)
	src := &flakySource{FullAccessSource: wrapper.NewFullAccessSource(db)}
	opts := DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	opts.PruneEmpty = true
	eng := NewEngine(src, opts)

	const q = "smith drama"
	healthy, err := eng.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(healthy) == 0 {
		t.Fatal("healthy search returned no explanations")
	}

	// Different query during the outage: every validation fails, all
	// explanations dropped. That degraded result must not be cached.
	src.failing.Store(true)
	const q2 = "dark drama"
	degraded, err := eng.Search(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded) != 0 {
		t.Fatalf("expected all explanations pruned during outage, got %d", len(degraded))
	}

	src.failing.Store(false)
	recovered, err := eng.Search(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) == 0 {
		t.Fatal("degraded empty result was served from cache after the source recovered")
	}

	// The healthy result, by contrast, must have been cached (same pointer
	// shape not required — just a hit-fast path returning equal content).
	again, err := eng.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(healthy) {
		t.Fatalf("healthy cached result changed: %d vs %d", len(again), len(healthy))
	}
}
