package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/ontology"
	"repro/internal/relational"
	"repro/internal/wrapper"
)

// smallDB is a one-table database whose term space differs from the main
// fixture's (used to exercise schema-mismatch handling).
func smallDB(t testing.TB) *relational.Database {
	t.Helper()
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name: "note",
		Columns: []relational.Column{
			{Name: "note_id", Type: relational.TypeInt, NotNull: true},
			{Name: "body", Type: relational.TypeString},
		},
		PrimaryKey: "note_id",
	}); err != nil {
		t.Fatal(err)
	}
	db := relational.MustNewDatabase("notes", s)
	db.Table("note").MustInsert(relational.Row{relational.Int(1), relational.String_("hello world")})
	return db
}

func TestAdaptUncertaintyMonotone(t *testing.T) {
	base := DefaultUncertainty()
	prevOCf, prevOCap := 2.0, -1.0
	for _, n := range []int{0, 1, 2, 5, 10, 20, 100} {
		u := AdaptUncertainty(base, n)
		if u.OCf >= prevOCf {
			t.Fatalf("OCf must strictly decrease with feedback: n=%d %v >= %v", n, u.OCf, prevOCf)
		}
		if u.OCap <= prevOCap {
			t.Fatalf("OCap must strictly increase with feedback: n=%d %v <= %v", n, u.OCap, prevOCap)
		}
		if u.OCf < 0.1-1e-9 || u.OCf > 0.8+1e-9 || u.OCap < 0.2-1e-9 || u.OCap > 0.8+1e-9 {
			t.Fatalf("n=%d: out of range: %+v", n, u)
		}
		if u.OC != base.OC || u.OI != base.OI {
			t.Fatalf("OC/OI must be untouched: %+v", u)
		}
		prevOCf, prevOCap = u.OCf, u.OCap
	}
	// Cold start matches the default.
	u0 := AdaptUncertainty(base, 0)
	if math.Abs(u0.OCf-0.8) > 1e-9 || math.Abs(u0.OCap-0.2) > 1e-9 {
		t.Fatalf("cold adaptation = %+v, want defaults", u0)
	}
	// Negative counts clamp to zero.
	if AdaptUncertainty(base, -5) != u0 {
		t.Fatal("negative feedback count must behave like 0")
	}
}

func TestAutoAdaptShiftsOnFeedback(t *testing.T) {
	e := fixtureEngine(t)
	e.AutoAdapt(true)
	before := e.Options().Uncertainty
	gold := &Configuration{
		Keywords: []string{"dark", "drama"},
		Terms: []Term{
			{Kind: KindDomain, Table: "movie", Column: "title"},
			{Kind: KindDomain, Table: "movie", Column: "genre"},
		},
	}
	var batch []*Configuration
	for i := 0; i < 10; i++ {
		batch = append(batch, gold)
	}
	e.AddFeedback(batch)
	after := e.Options().Uncertainty
	if after.OCf >= before.OCf {
		t.Fatalf("OCf must drop after feedback: %v -> %v", before.OCf, after.OCf)
	}
	if after.OCap <= before.OCap {
		t.Fatalf("OCap must rise after feedback: %v -> %v", before.OCap, after.OCap)
	}
	// Disabled: uncertainties stay put.
	e2 := fixtureEngine(t)
	u := e2.Options().Uncertainty
	e2.AddFeedback(batch)
	if e2.Options().Uncertainty != u {
		t.Fatal("without AutoAdapt the uncertainties must not move")
	}
}

func TestFeedbackPersistenceRoundTrip(t *testing.T) {
	e := fixtureEngine(t)
	gold := &Configuration{
		Keywords: []string{"dark", "drama"},
		Terms: []Term{
			{Kind: KindDomain, Table: "movie", Column: "title"},
			{Kind: KindDomain, Table: "movie", Column: "genre"},
		},
	}
	var batch []*Configuration
	for i := 0; i < 15; i++ {
		batch = append(batch, gold)
	}
	e.AddFeedback(batch)
	trained := e.Forward().TopKFeedback([]string{"dark", "drama"}, 3)
	if len(trained) == 0 {
		t.Fatal("trained decode empty")
	}

	var buf bytes.Buffer
	if err := e.Forward().SaveFeedback(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh engine over the same schema restores the trained behaviour.
	e2 := fixtureEngine(t)
	if e2.Forward().HasFeedback() {
		t.Fatal("fresh engine must start untrained")
	}
	if err := e2.Forward().LoadFeedback(&buf); err != nil {
		t.Fatal(err)
	}
	if !e2.Forward().HasFeedback() {
		t.Fatal("LoadFeedback must mark the mode trained")
	}
	restored := e2.Forward().TopKFeedback([]string{"dark", "drama"}, 3)
	if len(restored) == 0 || restored[0].ID() != trained[0].ID() {
		t.Fatalf("restored decode differs: %v vs %v", restored, trained)
	}
}

func TestLoadFeedbackSchemaMismatch(t *testing.T) {
	e := fixtureEngine(t)
	var buf bytes.Buffer
	if err := e.Forward().SaveFeedback(&buf); err != nil {
		t.Fatal(err)
	}
	// Engine over a different schema (different state count).
	s := NewTermSpace(e.Source().Schema())
	_ = s
	otherOpts := DefaultOptions()
	otherOpts.Thesaurus = ontology.DefaultThesaurus()
	small := wrapper.NewFullAccessSource(smallDB(t))
	e2 := NewEngine(small, otherOpts)
	if err := e2.Forward().LoadFeedback(&buf); err == nil {
		t.Fatal("loading a model for a different schema must fail")
	}
}

func TestNegativeFeedbackShiftsBack(t *testing.T) {
	e := fixtureEngine(t)
	e.AutoAdapt(true)
	gold := &Configuration{
		Keywords: []string{"dark", "drama"},
		Terms: []Term{
			{Kind: KindDomain, Table: "movie", Column: "title"},
			{Kind: KindDomain, Table: "movie", Column: "genre"},
		},
	}
	var batch []*Configuration
	for i := 0; i < 10; i++ {
		batch = append(batch, gold)
	}
	e.AddFeedback(batch)
	warm := e.Options().Uncertainty
	// Ten rejections neutralize the ten validations.
	e.AddNegativeFeedback(10)
	cooled := e.Options().Uncertainty
	if cooled.OCf <= warm.OCf {
		t.Fatalf("negative feedback must raise OCf: %v -> %v", warm.OCf, cooled.OCf)
	}
	cold := AdaptUncertainty(DefaultUncertainty(), 0)
	if mathAbs(cooled.OCf-cold.OCf) > 1e-9 {
		t.Fatalf("full rejection must return to cold start: %v vs %v", cooled.OCf, cold.OCf)
	}
	// Over-rejection clamps at zero effective feedback.
	e.AddNegativeFeedback(100)
	if e.Options().Uncertainty != cooled {
		t.Fatal("effective feedback must clamp at 0")
	}
	// Non-positive counts are ignored.
	e.AddNegativeFeedback(0)
	e.AddNegativeFeedback(-3)
	if e.Options().Uncertainty != cooled {
		t.Fatal("non-positive negative feedback must be a no-op")
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRetrainListViterbi(t *testing.T) {
	e := fixtureEngine(t)
	log := [][]string{
		{"spielberg", "drama"},
		{"kurosawa", "thriller"},
		{"smith", "drama"},
	}
	iters := e.Forward().RetrainListViterbi(log, 5, 10)
	if iters == 0 {
		t.Fatal("list Viterbi training did not run")
	}
	if !e.Forward().HasFeedback() {
		t.Fatal("training must mark the feedback mode trained")
	}
	configs := e.Forward().TopKFeedback([]string{"spielberg", "drama"}, 3)
	if len(configs) == 0 {
		t.Fatal("decode empty after list Viterbi training")
	}
	// The trained model must favor domain→domain transitions seen in the
	// log: top config maps both keywords to value domains.
	for _, term := range configs[0].Terms {
		if term.Kind != KindDomain {
			t.Fatalf("top config has non-domain term after training: %v", configs[0])
		}
	}
}

func TestEngineKDefaulting(t *testing.T) {
	opts := DefaultOptions()
	opts.K = -1
	e := NewEngine(wrapper.NewFullAccessSource(fixtureDB(t)), opts)
	if e.Options().K <= 0 {
		t.Fatalf("K = %d, want defaulted positive", e.Options().K)
	}
}

func TestResultLimitPropagates(t *testing.T) {
	opts := DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	opts.ResultLimit = 2
	e := NewEngine(wrapper.NewFullAccessSource(fixtureDB(t)), opts)
	results, err := e.Search("drama")
	if err != nil || len(results) == 0 {
		t.Fatalf("search: %v", err)
	}
	res, err := e.Execute(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) > 2 {
		t.Fatalf("result limit ignored: %d rows", len(res.Rows))
	}
}
