package core

import (
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/hmm"
	"repro/internal/ontology"
	"repro/internal/relational"
	"repro/internal/wrapper"
)

// emissionCacheSize bounds the per-forward-module LRU of keyword→emission
// vectors. Vectors are small (one float64 per HMM state) and the keyword
// working set of a live system is tiny, so a few thousand entries make the
// cache effectively unbounded in practice while still capping memory.
const emissionCacheSize = 4096

// AprioriWeights are the heuristic-rule parameters of the a-priori operating
// mode: relative transition affinities between database terms derived from
// the semantic relationships among them (aggregation = same table,
// inclusion = PK/FK link, generalization = ontology link between tables).
type AprioriWeights struct {
	// AttrToOwnDomain boosts attribute→its own domain ("title scorsese").
	AttrToOwnDomain float64
	// SameTable boosts transitions between terms of the same table
	// (aggregation relationship).
	SameTable float64
	// FKAdjacent boosts transitions between terms of tables connected by a
	// foreign key (inclusion relationship).
	FKAdjacent float64
	// Generalization boosts transitions between tables related through the
	// ontology (hypernym/synonym of table names).
	Generalization float64
	// Base is the floor affinity between any two terms, keeping the chain
	// ergodic.
	Base float64
}

// DefaultAprioriWeights returns the weights used across the repo; relative
// magnitudes follow the paper's intent ("foster the transition between
// database terms belonging to the same table and belonging to tables
// connected through foreign keys").
func DefaultAprioriWeights() AprioriWeights {
	return AprioriWeights{
		AttrToOwnDomain: 8,
		SameTable:       4,
		FKAdjacent:      2,
		Generalization:  1.5,
		Base:            0.1,
	}
}

// Forward is the forward module: it owns the term space, the a-priori HMM
// and the feedback HMM, and decodes keyword queries into configurations.
//
// Forward is safe for concurrent use and its models are copy-on-write:
// training (AddFeedback, RetrainEM, RetrainListViterbi, SetAprioriWeights,
// LoadFeedback) builds a new model and swaps the pointer under the write
// lock, so a decoder that snapshots the pointers (models) works against an
// immutable pair for its whole decode without holding any lock.
type Forward struct {
	source wrapper.Source
	space  *TermSpace
	thes   *ontology.Thesaurus

	// mu guards the two model pointers and the feedback bookkeeping below.
	// The models themselves are immutable once published (copy-on-write).
	mu       sync.RWMutex
	apriori  *hmm.Model
	feedback *hmm.Model

	// trainedFeedback reports whether any feedback has been incorporated;
	// before that the feedback mode decodes with an untrained (uniform)
	// model, which the DS combiner is expected to down-weight via OCf.
	trainedFeedback bool
	feedbackCount   int
	// supervisedPaths accumulates validated state sequences across feedback
	// batches so each retraining sees the full history. Append-only: a
	// training pass may capture the slice under the lock and read it after
	// release, because existing elements are never modified.
	supervisedPaths [][]int
	// publishedHistory is the history length the current feedback model was
	// trained on; publishFeedback uses it to drop out-of-order publications
	// from concurrent feedback batches (longer history wins — it is a
	// superset).
	publishedHistory int

	// emissionCache memoizes keyword→emission vectors. Emission vectors
	// depend only on the source, schema and thesaurus — all immutable after
	// construction — so entries never need invalidation; the sharded LRU
	// lets concurrent decodes share them without contending on one lock.
	emissionCache *cache.LRU[string, []float64]
}

// NewForward builds the forward module for a source. The thesaurus may be
// nil (ontology evidence is then limited to exact/stem matches).
func NewForward(src wrapper.Source, thes *ontology.Thesaurus) *Forward {
	if thes == nil {
		thes = ontology.NewThesaurus()
	}
	f := &Forward{
		source:        src,
		space:         NewTermSpace(src.Schema()),
		thes:          thes,
		emissionCache: cache.New[string, []float64](emissionCacheSize),
	}
	f.apriori = f.buildAprioriHMM(DefaultAprioriWeights())
	f.feedback = hmm.NewModel(f.space.Len())
	f.feedback.Names = f.space.Names()
	return f
}

// Space exposes the term space (shared with the backward module).
func (f *Forward) Space() *TermSpace { return f.space }

// FeedbackCount returns how many validated searches have been incorporated.
func (f *Forward) FeedbackCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.feedbackCount
}

// buildAprioriHMM derives initial and transition distributions from the
// schema using the heuristic rules.
func (f *Forward) buildAprioriHMM(w AprioriWeights) *hmm.Model {
	n := f.space.Len()
	m := hmm.NewModel(n)
	m.Names = f.space.Names()
	schema := f.source.Schema()

	// FK adjacency between tables, generalized to hop distances: tables one
	// FK away get the full FKAdjacent boost, two hops (through a junction
	// table like cast_info) half of it, and so on — keyword pairs routinely
	// straddle a junction table the user never names.
	dist := tableDistances(schema)

	related := func(a, b string) bool {
		return f.thes.Related(a, b) >= 0.5
	}

	for i := 0; i < n; i++ {
		ti := f.space.Terms[i]
		row := m.Trans[i]
		for j := 0; j < n; j++ {
			tj := f.space.Terms[j]
			weight := w.Base
			sameTable := strings.EqualFold(ti.Table, tj.Table)
			d := dist[tableKey(ti.Table)][tableKey(tj.Table)]
			switch {
			case sameTable && ti.Kind == KindAttribute && tj.Kind == KindDomain &&
				strings.EqualFold(ti.Column, tj.Column):
				weight = w.AttrToOwnDomain
			case sameTable && i != j:
				weight = w.SameTable
			case d > 0:
				weight = w.FKAdjacent / float64(uint(1)<<uint(d-1))
				if weight < w.Base {
					weight = w.Base
				}
			case !sameTable && related(ti.Table, tj.Table):
				weight = w.Generalization
			}
			if !sameTable && related(ti.Table, tj.Table) && w.Generalization > weight {
				weight = w.Generalization
			}
			row[j] = weight
		}
	}
	// Initial distribution: favor table terms slightly (queries tend to
	// open with the entity of interest), then attributes, then domains.
	for i := 0; i < n; i++ {
		switch f.space.Terms[i].Kind {
		case KindTable:
			m.Initial[i] = 3
		case KindAttribute:
			m.Initial[i] = 2
		default:
			m.Initial[i] = 2
		}
	}
	m.Normalize()
	return m
}

func tableKey(t string) string { return strings.ToLower(t) }

// tableDistances computes BFS hop distances between all table pairs over
// the schema's FK edges (0 = same table or unreachable; callers treat same
// table separately).
func tableDistances(schema *relational.Schema) map[string]map[string]int {
	adj := make(map[string][]string)
	link := func(a, b string) {
		a, b = tableKey(a), tableKey(b)
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, e := range schema.JoinEdges() {
		link(e.FromTable, e.ToTable)
	}
	out := make(map[string]map[string]int)
	for _, t := range schema.TableNames() {
		start := tableKey(t)
		d := map[string]int{start: 0}
		queue := []string{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if _, ok := d[nb]; !ok {
					d[nb] = d[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		delete(d, start)
		out[start] = d
	}
	return out
}

// Emission returns the probability that state (term) s emits keyword kw.
// Domain terms use the source's attribute relevance function (full-text
// score for owned databases, metadata guess for hidden ones); table and
// attribute terms use ontology relatedness and name similarity against the
// term's name and annotations.
func (f *Forward) Emission(s int, kw string) float64 {
	return f.emissions(kw)[s]
}

// emissions returns the full (immutable) emission vector for a keyword,
// from the shared LRU or computed on miss.
func (f *Forward) emissions(kw string) []float64 {
	cached, ok := f.emissionCache.Get(kw)
	if !ok {
		cached = f.computeEmissions(kw)
		f.emissionCache.Put(kw, cached)
	}
	return cached
}

// computeEmissions builds the per-keyword emission vector. Two evidence
// families feed it with incompatible scales: full-text scores are
// normalized per attribute to sum to 1 over the vocabulary (so individual
// values are ~1/|vocab|), while name similarities live in [0,1]. To make
// them commensurable the domain scores are first rescaled so the keyword's
// best-matching attribute reaches 0.95 (relative discrimination between
// attributes is preserved; zero stays zero), then the whole vector is
// normalized to sum to 1 — a locally-normalized (maximum-entropy-Markov)
// variant of the paper's per-attribute normalization coefficient. See
// DESIGN.md §5.
func (f *Forward) computeEmissions(kw string) []float64 {
	n := f.space.Len()
	out := make([]float64, n)
	schema := f.source.Schema()
	maxDomain := 0.0
	for i := 0; i < n; i++ {
		t := f.space.Terms[i]
		switch t.Kind {
		case KindDomain:
			s := f.source.AttributeScore(t.Table, t.Column, kw)
			out[i] = s
			if s > maxDomain {
				maxDomain = s
			}
		case KindTable:
			out[i] = f.schemaTermScore(kw, t.Table, schema.Table(t.Table).Annotations)
		case KindAttribute:
			col := schema.Table(t.Table).Column(t.Column)
			out[i] = f.schemaTermScore(kw, t.Column, col.Annotations)
		}
	}
	if maxDomain > 0 {
		scale := 0.95 / maxDomain
		for i := 0; i < n; i++ {
			if f.space.Terms[i].Kind == KindDomain {
				out[i] *= scale
			}
		}
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// schemaTermScore scores a keyword against a schema term name plus its
// annotations. Semantic relatedness from the thesaurus (exact/stem match,
// synonym, hypernym) is accepted from 0.5 up; bare string similarity is
// noisy on short words (Jaro–Winkler rates "drama"/"name" at 0.63), so it
// only counts from 0.75 up — misspellings still pass, coincidences don't.
func (f *Forward) schemaTermScore(kw, name string, annotations []string) float64 {
	const (
		semanticCutoff = 0.5
		stringCutoff   = 0.75
	)
	semantic := f.thes.Related(kw, name)
	for _, a := range annotations {
		if r := f.thes.Related(kw, a); r > semantic {
			semantic = r
		}
	}
	str := ontology.NameSimilarity(kw, name)
	for _, a := range annotations {
		if s := ontology.NameSimilarity(kw, a) * 0.9; s > str {
			str = s
		}
	}
	best := 0.0
	if semantic >= semanticCutoff {
		best = semantic
	}
	if str >= stringCutoff && str > best {
		best = str
	}
	return best
}

// AddFeedback incorporates one validated search: the keyword sequence and
// the configuration the user confirmed. Supervised counting re-estimates
// the feedback HMM (the on-line training of the feedback-based mode); the
// keyword sequences are also kept implicitly through the supervised state
// paths, so EM refinement in Retrain stays consistent.
func (f *Forward) AddFeedback(validated []*Configuration) {
	m, n := f.prepareFeedback(validated)
	if m == nil {
		return
	}
	f.publishFeedback(m, n)
}

// prepareFeedback appends the validated paths to the training history and
// trains a replacement feedback model. The expensive re-estimation runs
// outside any lock (on a private clone over a captured history slice), so
// callers holding the engine lock for atomic publication don't stall
// concurrent searches for the duration of training. Returns nil when no
// validated configuration maps onto the term space.
func (f *Forward) prepareFeedback(validated []*Configuration) (*hmm.Model, int) {
	var paths [][]int
	for _, c := range validated {
		path := make([]int, 0, len(c.Terms))
		okAll := true
		for _, t := range c.Terms {
			i := f.space.Index(t)
			if i < 0 {
				okAll = false
				break
			}
			path = append(path, i)
		}
		if okAll && len(path) > 0 {
			paths = append(paths, path)
		}
	}
	if len(paths) == 0 {
		return nil, 0
	}
	f.mu.Lock()
	f.supervisedPaths = append(f.supervisedPaths, paths...)
	history := f.supervisedPaths[:len(f.supervisedPaths):len(f.supervisedPaths)]
	base := f.feedback
	f.mu.Unlock()

	// Copy-on-write: re-estimate into a clone of the current model;
	// TrainSupervised derives everything from the history, so concurrent
	// batches training from different bases still converge.
	m := base.Clone()
	m.TrainSupervised(history, 0.01)
	return m, len(history)
}

// publishFeedback installs a model trained on historyLen validated paths.
// When concurrent feedback batches race, the publication covering the
// longer (superset) history wins and the shorter one is dropped — its
// paths are already part of the longer history.
func (f *Forward) publishFeedback(m *hmm.Model, historyLen int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if historyLen <= f.publishedHistory {
		return
	}
	f.feedback = m
	f.publishedHistory = historyLen
	f.feedbackCount = historyLen
	f.trainedFeedback = true
}

// RetrainEM refines the feedback HMM with unlabeled keyword sequences
// (searches the user ran but did not validate) via Expectation–Maximization.
func (f *Forward) RetrainEM(keywordSeqs [][]string, maxIter int) int {
	if len(keywordSeqs) == 0 {
		return 0
	}
	// Train on a clone outside the lock (EM over long logs is slow); the
	// brief swap below is the only exclusion decoders can observe.
	f.mu.RLock()
	base := f.feedback
	f.mu.RUnlock()
	m := base.Clone()
	it := m.TrainEM(keywordSeqs, f.Emission, maxIter, 1e-4)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.feedback = m
	if it > 0 {
		f.trainedFeedback = true
	}
	return it
}

// RetrainListViterbi refines the feedback HMM from unlabeled keyword
// sequences with the list Viterbi training algorithm of the paper's
// reference [4] (Rota et al., CIKM 2011): hard EM over the top-k decoded
// state sequences per query. Cheaper and more focused than full Baum–Welch
// on long logs.
func (f *Forward) RetrainListViterbi(keywordSeqs [][]string, k, maxIter int) int {
	if len(keywordSeqs) == 0 {
		return 0
	}
	f.mu.RLock()
	base := f.feedback
	f.mu.RUnlock()
	m := base.Clone()
	it := m.TrainListViterbi(keywordSeqs, f.Emission, k, maxIter, 1e-4)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.feedback = m
	if it > 0 {
		f.trainedFeedback = true
	}
	return it
}

// TopKApriori decodes the top-k configurations with the a-priori HMM.
func (f *Forward) TopKApriori(keywords []string, k int) []*Configuration {
	ap, _ := f.models()
	return f.decode(ap, keywords, k, "a-priori")
}

// TopKFeedback decodes the top-k configurations with the feedback HMM.
func (f *Forward) TopKFeedback(keywords []string, k int) []*Configuration {
	_, fb := f.models()
	return f.decode(fb, keywords, k, "feedback")
}

// HasFeedback reports whether the feedback model has ever been trained.
func (f *Forward) HasFeedback() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.trainedFeedback
}

// models snapshots both HMM pointers under one read lock. The returned
// models are immutable (training swaps pointers rather than mutating), so
// the pair is a consistent view a caller can decode against lock-free.
func (f *Forward) models() (apriori, feedback *hmm.Model) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.apriori, f.feedback
}

// decode runs list-Viterbi decoding against a snapshotted (immutable)
// model; no lock is held while decoding. The emission callback memoizes
// the current keyword's vector locally: ListViterbi asks for every state
// of one keyword before moving to the next, so this costs one shared-LRU
// lookup per distinct keyword instead of one per (state, keyword) pair.
func (f *Forward) decode(m *hmm.Model, keywords []string, k int, mode string) []*Configuration {
	if len(keywords) == 0 || k <= 0 {
		return nil
	}
	var curKw string
	var curVec []float64
	emit := func(s int, kw string) float64 {
		if curVec == nil || kw != curKw {
			curVec = f.emissions(kw)
			curKw = kw
		}
		return curVec[s]
	}
	paths := m.ListViterbi(keywords, emit, k)
	out := make([]*Configuration, 0, len(paths))
	for _, p := range paths {
		terms := make([]Term, len(p.States))
		for i, s := range p.States {
			terms[i] = f.space.Terms[s]
		}
		out = append(out, &Configuration{
			Keywords: append([]string(nil), keywords...),
			Terms:    terms,
			Score:    math.Exp(p.LogProb),
			Mode:     mode,
		})
	}
	// Deduplicate identical mappings (distinct rank paths can collapse to
	// the same configuration after term mapping).
	seen := make(map[string]*Configuration, len(out))
	var dedup []*Configuration
	for _, c := range out {
		id := c.ID()
		if prev, ok := seen[id]; ok {
			prev.Score += c.Score
			continue
		}
		seen[id] = c
		dedup = append(dedup, c)
	}
	sort.SliceStable(dedup, func(i, j int) bool {
		if dedup[i].Score != dedup[j].Score {
			return dedup[i].Score > dedup[j].Score
		}
		return dedup[i].ID() < dedup[j].ID()
	})
	if len(dedup) > k {
		dedup = dedup[:k]
	}
	return dedup
}

// SetAprioriWeights rebuilds the a-priori HMM with custom heuristic weights
// (ablation hook for experiment E8 variants).
func (f *Forward) SetAprioriWeights(w AprioriWeights) {
	m := f.buildAprioriHMM(w)
	f.mu.Lock()
	f.apriori = m
	f.mu.Unlock()
}

// SaveFeedback serializes the trained feedback model (JSON). The state
// space is schema-derived, so a saved model is only loadable against the
// same schema.
func (f *Forward) SaveFeedback(w io.Writer) error {
	_, fb := f.models()
	return fb.Save(w) // the snapshot is immutable; serialize outside the lock
}

// LoadFeedback restores a feedback model previously saved with
// SaveFeedback and marks the feedback mode as trained.
func (f *Forward) LoadFeedback(r io.Reader) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.feedback.Clone()
	if err := m.Restore(r); err != nil {
		return err
	}
	f.feedback = m
	f.trainedFeedback = true
	return nil
}
