package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/relational"
	"repro/internal/steiner"
	"repro/internal/wrapper"
)

// Interpretation is one join path (Steiner tree over the schema graph)
// connecting the database terms of a configuration — the backward step's
// output unit.
type Interpretation struct {
	Config *Configuration
	Tree   *steiner.Tree
	// Graph is the schema graph the tree indexes into (needed to resolve
	// vertex names).
	Graph *steiner.Graph
	// Score is exp(−cost): cheap (informative) trees approach 1.
	Score float64
}

// ID identifies the interpretation by its configuration and edge set.
func (in *Interpretation) ID() string {
	return in.Config.ID() + "#" + in.Tree.Signature()
}

// Tables returns the sorted distinct tables spanned by the tree (attribute
// vertices are "table.column").
func (in *Interpretation) Tables() []string {
	set := make(map[string]bool)
	for _, v := range in.Tree.Vertices() {
		name := in.Graph.Name(v)
		if i := strings.IndexByte(name, '.'); i > 0 {
			set[name[:i]] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// JoinSteps lists the PK↔FK edges of the tree (intra-table edges excluded),
// each as [fromTable, fromColumn, toTable, toColumn].
func (in *Interpretation) JoinSteps() [][4]string {
	var out [][4]string
	for _, e := range in.Tree.Edges {
		if e.Label != "fk" {
			continue
		}
		from := in.Graph.Name(e.From)
		to := in.Graph.Name(e.To)
		fi := strings.IndexByte(from, '.')
		ti := strings.IndexByte(to, '.')
		out = append(out, [4]string{from[:fi], from[fi+1:], to[:ti], to[ti+1:]})
	}
	return out
}

// BackwardOptions tunes the backward module.
type BackwardOptions struct {
	// UseMIWeights weights schema-graph edges with the mutual-information
	// distance measured on the instance; false falls back to uniform
	// weights (always the case for metadata-only sources). Ablation E8.
	UseMIWeights bool
	// Dedup discards Steiner trees that are sub-trees of previously
	// emitted ones (the paper's pruning mechanism). Ablation E8.
	Dedup bool
	// IntraTableWeight is the base weight of PK→attribute edges (kept well
	// below FK edges so staying inside a table is always preferred).
	IntraTableWeight float64
	// FKBaseWeight is the base weight of PK↔FK edges before MI scaling.
	FKBaseWeight float64
	// CacheSize caps the memoized Steiner TopK LRU (entries, keyed on the
	// terminal set and k). The schema graph is immutable after setup, so
	// memoized trees never go stale. 0 selects DefaultSteinerCacheSize; a
	// negative value disables memoization.
	CacheSize int
}

// DefaultSteinerCacheSize is the Steiner memo capacity used when
// BackwardOptions.CacheSize is 0. Distinct terminal sets are bounded by the
// configurations the forward module can produce, so a few hundred entries
// cover a live workload.
const DefaultSteinerCacheSize = 512

// DefaultBackwardOptions returns the configuration used across the repo.
func DefaultBackwardOptions() BackwardOptions {
	return BackwardOptions{
		UseMIWeights:     true,
		Dedup:            true,
		IntraTableWeight: 0.1,
		FKBaseWeight:     1.0,
	}
}

// Backward is the backward module: it owns the schema graph and finds
// top-k interpretations for configurations. It is safe for concurrent use:
// the schema graph is immutable after construction and the TopK memo is a
// concurrent sharded LRU.
type Backward struct {
	source wrapper.Source
	opts   BackwardOptions
	graph  *steiner.Graph

	// treeCache memoizes graph.TopK results keyed on (terminal set, k).
	// Trees are immutable once emitted, so cached slices are shared across
	// calls and goroutines; only the per-call Interpretation wrappers are
	// allocated fresh.
	treeCache *cache.LRU[string, []*steiner.Tree]
}

// NewBackward builds the schema graph for the source. With UseMIWeights and
// an instance-backed source, every edge weight is scaled by the MI distance
// of the underlying join; otherwise weights are uniform per edge class.
func NewBackward(src wrapper.Source, opts BackwardOptions) *Backward {
	b := &Backward{source: src, opts: opts}
	b.graph = b.buildGraph()
	size := opts.CacheSize
	if size == 0 {
		size = DefaultSteinerCacheSize
	}
	b.treeCache = cache.New[string, []*steiner.Tree](size) // nil (disabled) when size < 0
	return b
}

// Graph exposes the schema graph (diagnostics, visualization, tests).
func (b *Backward) Graph() *steiner.Graph { return b.graph }

func vertexName(table, column string) string {
	return strings.ToLower(table) + "." + strings.ToLower(column)
}

// buildGraph creates the schema graph of the paper's backward module: one
// node per attribute; edges (i) PK node ↔ every other attribute of the same
// table and (ii) PK ↔ FK attribute pairs across tables.
func (b *Backward) buildGraph() *steiner.Graph {
	g := steiner.NewGraph()
	schema := b.source.Schema()
	useMI := b.opts.UseMIWeights && b.source.HasInstanceAccess()

	for _, t := range schema.Tables() {
		pk := t.PrimaryKey
		if pk == "" && len(t.Columns) > 0 {
			// Tables without a declared PK anchor on their first column so
			// the graph stays connected per table.
			pk = t.Columns[0].Name
		}
		pkNode := vertexName(t.Name, pk)
		g.AddVertex(pkNode)
		for _, c := range t.Columns {
			if strings.EqualFold(c.Name, pk) {
				continue
			}
			w := b.opts.IntraTableWeight
			if useMI {
				if ps, err := b.edgeStats(t.Name, pk, t.Name, c.Name); err == nil {
					// Informative attributes (low distance) get cheaper edges.
					w = b.opts.IntraTableWeight * (0.5 + ps)
				}
			}
			g.AddEdge(pkNode, vertexName(t.Name, c.Name), w, "intra")
		}
	}
	for _, e := range schema.JoinEdges() {
		w := b.opts.FKBaseWeight
		if useMI {
			if d, err := b.source.EdgeDistance(e); err == nil {
				w = b.opts.FKBaseWeight * (0.25 + d)
			}
		}
		g.AddEdge(vertexName(e.FromTable, e.FromColumn), vertexName(e.ToTable, e.ToColumn), w, "fk")
	}
	return g
}

func (b *Backward) edgeStats(fromTable, fromCol, toTable, toCol string) (float64, error) {
	return b.source.EdgeDistance(relational.JoinEdge{
		FromTable: fromTable, FromColumn: fromCol,
		ToTable: toTable, ToColumn: toCol,
	})
}

// Terminals maps a configuration to the schema-graph vertices its terms pin
// down: attribute and domain terms anchor on their attribute node; table
// terms anchor on the table's PK node.
func (b *Backward) Terminals(c *Configuration) ([]string, error) {
	schema := b.source.Schema()
	seen := make(map[string]bool)
	var out []string
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, t := range c.Terms {
		ts := schema.Table(t.Table)
		if ts == nil {
			return nil, fmt.Errorf("core: configuration references unknown table %s", t.Table)
		}
		switch t.Kind {
		case KindTable:
			pk := ts.PrimaryKey
			if pk == "" && len(ts.Columns) > 0 {
				pk = ts.Columns[0].Name
			}
			add(vertexName(t.Table, pk))
		default:
			if ts.ColumnIndex(t.Column) < 0 {
				return nil, fmt.Errorf("core: configuration references unknown column %s.%s", t.Table, t.Column)
			}
			add(vertexName(t.Table, t.Column))
		}
	}
	sort.Strings(out)
	return out, nil
}

// TopK returns the top-k interpretations for a configuration, best
// (cheapest tree) first. Configurations whose terminals cannot be connected
// yield no interpretations.
//
// Steiner decoding is memoized on the terminal set: distinct configurations
// routinely map to the same attribute vertices (same tables, different
// keywords), and the tree enumeration is by far the most expensive step of
// the backward module, so repeat terminal sets become a cache lookup.
func (b *Backward) TopK(c *Configuration, k int) ([]*Interpretation, error) {
	terminals, err := b.Terminals(c)
	if err != nil {
		return nil, err
	}
	trees, err := b.topKTrees(terminals, k)
	if err != nil {
		return nil, err
	}
	return b.wrapTrees(c, trees), nil
}

// topKTrees is the memoized tree enumeration behind TopK, keyed on the
// sorted terminal set and k.
func (b *Backward) topKTrees(terminals []string, k int) ([]*steiner.Tree, error) {
	var key string
	if b.treeCache != nil {
		key = strconv.Itoa(k) + "|" + strings.Join(terminals, ",")
		if trees, ok := b.treeCache.Get(key); ok {
			return trees, nil
		}
	}
	trees, err := b.graph.TopK(terminals, k, steiner.Options{Dedup: b.opts.Dedup})
	if err != nil {
		return nil, err
	}
	if b.treeCache != nil {
		b.treeCache.Put(key, trees)
	}
	return trees, nil
}

// wrapTrees builds per-configuration interpretations over a (possibly
// shared) tree slice.
func (b *Backward) wrapTrees(c *Configuration, trees []*steiner.Tree) []*Interpretation {
	out := make([]*Interpretation, 0, len(trees))
	for _, t := range trees {
		out = append(out, &Interpretation{
			Config: c,
			Tree:   t,
			Graph:  b.graph,
			Score:  math.Exp(-t.Cost),
		})
	}
	return out
}
