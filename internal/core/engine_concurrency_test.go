package core

import (
	"sync"
	"testing"

	"repro/internal/ontology"
	"repro/internal/wrapper"
)

// engineWith builds a fixture engine with custom options.
func engineWith(t testing.TB, mutate func(*Options)) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	if mutate != nil {
		mutate(&opts)
	}
	return NewEngine(wrapper.NewFullAccessSource(fixtureDB(t)), opts)
}

// TestConcurrentEngineUse hammers one engine from many goroutines mixing
// searches, feedback training, uncertainty updates and negative feedback.
// It exists to be run under -race (the race target of the Makefile); the
// assertions only check basic sanity of each result.
func TestConcurrentEngineUse(t *testing.T) {
	eng := engineWith(t, func(o *Options) { o.PruneEmpty = true })
	queries := []string{"dark", "drama river", "smith drama", "spielberg", "movie thriller", "person dark"}

	var wg sync.WaitGroup
	const goroutines = 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch (g + i) % 4 {
				case 0, 1:
					ex, err := eng.Search(queries[(g+i)%len(queries)])
					if err != nil {
						t.Errorf("Search: %v", err)
						return
					}
					for j := 1; j < len(ex); j++ {
						if ex[j-1].Belief < ex[j].Belief {
							t.Error("beliefs not sorted")
							return
						}
					}
				case 2:
					configs, err := eng.Configurations([]string{"dark", "drama"})
					if err != nil {
						t.Errorf("Configurations: %v", err)
						return
					}
					if len(configs) > 0 {
						eng.AddFeedback(configs[:1])
					}
				case 3:
					u := DefaultUncertainty()
					u.OC = 0.1 + 0.05*float64(g)
					eng.SetUncertainty(u)
					eng.AddNegativeFeedback(1)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestParallelInterpretationsDeterministic asserts the parallel backward
// fan-out returns interpretations in exactly the order of the sequential
// baseline.
func TestParallelInterpretationsDeterministic(t *testing.T) {
	seqEng := engineWith(t, func(o *Options) { o.Parallelism = 1 })
	parEng := engineWith(t, func(o *Options) { o.Parallelism = 8 })

	for _, kws := range [][]string{
		{"dark"},
		{"dark", "drama"},
		{"smith", "drama", "2008"},
		{"spielberg", "river", "thriller"},
	} {
		configs, err := seqEng.Configurations(kws)
		if err != nil {
			t.Fatal(err)
		}
		if len(configs) == 0 {
			continue
		}
		seq, err := seqEng.Interpretations(configs)
		if err != nil {
			t.Fatal(err)
		}
		par, err := parEng.Interpretations(configs)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("keywords %v: sequential %d interpretations, parallel %d", kws, len(seq), len(par))
		}
		for i := range seq {
			if seq[i].ID() != par[i].ID() {
				t.Fatalf("keywords %v: order diverged at %d: %q vs %q", kws, i, seq[i].ID(), par[i].ID())
			}
		}
	}
}

// TestParallelSearchMatchesSequential runs the full pipeline both ways.
func TestParallelSearchMatchesSequential(t *testing.T) {
	seqEng := engineWith(t, func(o *Options) { o.Parallelism = 1; o.QueryCacheSize = -1; o.PruneEmpty = true })
	parEng := engineWith(t, func(o *Options) { o.Parallelism = 8; o.QueryCacheSize = -1; o.PruneEmpty = true })
	for _, q := range []string{"dark", "drama river", "smith drama", "movie thriller"} {
		seq, err := seqEng.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		par, err := parEng.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("query %q: %d vs %d explanations", q, len(seq), len(par))
		}
		for i := range seq {
			if seq[i].ID() != par[i].ID() || seq[i].SQL != par[i].SQL || seq[i].Belief != par[i].Belief {
				t.Fatalf("query %q: result %d differs", q, i)
			}
		}
	}
}

// TestQueryCacheHitsAndInvalidation checks that repeated searches are
// served from the cache, that cached results are isolated from caller
// mutation, and that feedback/uncertainty changes invalidate entries.
func TestQueryCacheHitsAndInvalidation(t *testing.T) {
	eng := engineWith(t, nil)
	first, err := eng.Search("dark drama")
	if err != nil || len(first) == 0 {
		t.Fatalf("seed search failed: %v (%d results)", err, len(first))
	}

	// Mutate the caller's copy; a subsequent hit must not see it.
	want := first[0].Belief
	first[0].Belief = -1
	second, err := eng.Search("dark drama")
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Belief != want {
		t.Fatalf("cache returned caller-mutated belief %g, want %g", second[0].Belief, want)
	}
	if second[0] == first[0] {
		t.Fatal("cache hit returned aliased explanation struct")
	}

	// Uncertainty change must invalidate: beliefs shift with OI.
	u := eng.Options().Uncertainty
	u.OI = 0.9
	u.OC = 0.05
	eng.SetUncertainty(u)
	third, err := eng.Search("dark drama")
	if err != nil {
		t.Fatal(err)
	}
	if len(third) == 0 {
		t.Fatal("no results after uncertainty change")
	}
	if third[0].Belief == want && third[0].Belief == second[0].Belief {
		// Equal beliefs alone are not proof of staleness, but an identical
		// struct pointer is.
		if third[0] == second[0] {
			t.Fatal("stale cache entry served after SetUncertainty")
		}
	}

	// Feedback must invalidate too (epoch bump).
	configs, err := eng.Configurations([]string{"dark", "drama"})
	if err != nil || len(configs) == 0 {
		t.Fatalf("no configurations: %v", err)
	}
	eng.AddFeedback(configs[:1])
	fourth, err := eng.Search("dark drama")
	if err != nil {
		t.Fatal(err)
	}
	if len(fourth) == 0 {
		t.Fatal("no results after feedback")
	}
}

// TestQueryCacheDisabled ensures a negative QueryCacheSize turns caching
// off entirely.
func TestQueryCacheDisabled(t *testing.T) {
	eng := engineWith(t, func(o *Options) { o.QueryCacheSize = -1 })
	if eng.queryCache != nil {
		t.Fatal("query cache allocated despite QueryCacheSize=-1")
	}
	if _, err := eng.Search("dark"); err != nil {
		t.Fatal(err)
	}
}

// TestSteinerMemoSharedAcrossConfigurations checks that two configurations
// with identical terminal sets produce identical (shared) trees, and that
// disabling the memo still works.
func TestSteinerMemoSharedAcrossConfigurations(t *testing.T) {
	eng := engineWith(t, nil)
	c1 := &Configuration{
		Keywords: []string{"x", "y"},
		Terms: []Term{
			{Kind: KindDomain, Table: "movie", Column: "title"},
			{Kind: KindDomain, Table: "person", Column: "name"},
		},
	}
	c2 := &Configuration{
		Keywords: []string{"a", "b"},
		Terms: []Term{
			{Kind: KindDomain, Table: "person", Column: "name"},
			{Kind: KindDomain, Table: "movie", Column: "title"},
		},
	}
	in1, err := eng.Backward().TopK(c1, 5)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := eng.Backward().TopK(c2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(in1) == 0 || len(in1) != len(in2) {
		t.Fatalf("expected equal non-empty interpretation sets, got %d and %d", len(in1), len(in2))
	}
	for i := range in1 {
		if in1[i].Tree != in2[i].Tree {
			t.Fatalf("tree %d not shared via memo", i)
		}
	}

	noMemo := engineWith(t, func(o *Options) { o.Backward.CacheSize = -1 })
	if noMemo.Backward().treeCache != nil {
		t.Fatal("tree cache allocated despite CacheSize=-1")
	}
	in3, err := noMemo.Backward().TopK(c1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(in3) != len(in1) {
		t.Fatalf("memo-less TopK returned %d interpretations, want %d", len(in3), len(in1))
	}
}

// TestInvalidateCaches covers the manual invalidation hook for direct
// Forward mutations.
func TestInvalidateCaches(t *testing.T) {
	eng := engineWith(t, nil)
	if _, err := eng.Search("dark"); err != nil {
		t.Fatal(err)
	}
	before := eng.epoch
	eng.InvalidateCaches()
	if eng.epoch == before {
		t.Fatal("InvalidateCaches did not bump the epoch")
	}
	if _, err := eng.Search("dark"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSearchSameQuery exercises cache races on one hot key.
func TestConcurrentSearchSameQuery(t *testing.T) {
	eng := engineWith(t, nil)
	var wg sync.WaitGroup
	results := make([][]*Explanation, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ex, err := eng.Search("smith drama")
			if err != nil {
				t.Errorf("Search: %v", err)
				return
			}
			results[g] = ex
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(results); g++ {
		if len(results[g]) != len(results[0]) {
			t.Fatalf("goroutine %d saw %d results, goroutine 0 saw %d", g, len(results[g]), len(results[0]))
		}
		for i := range results[g] {
			if results[g][i].ID() != results[0][i].ID() {
				t.Fatalf("goroutine %d result %d = %s, want %s", g, i, results[g][i].ID(), results[0][i].ID())
			}
		}
	}
}
