package core

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/wrapper"
)

func TestPruneEmptyDropsEmptyExplanations(t *testing.T) {
	db := fixtureDB(t)
	opts := DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	opts.PruneEmpty = true
	pruned := NewEngine(wrapper.NewFullAccessSource(db), opts)

	opts.PruneEmpty = false
	plain := NewEngine(wrapper.NewFullAccessSource(db), opts)

	// "dark drama": "dark" matches titles and a person name, but no DRAMA
	// movie has "dark" in its title (dark night is a thriller, dark river a
	// drama — wait, dark river IS a drama). Use "storm drama" instead:
	// golden storm is a comedy, so title=storm AND genre=drama is empty,
	// while the person-name reading has no match either; the query
	// "kurosawa drama" has no kurosawa in a drama? kurosawa played in
	// movie 1 (thriller). So its join explanation is empty.
	const q = "kurosawa drama"
	rPlain, err := plain.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	rPruned, err := pruned.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rPruned) >= len(rPlain) && len(rPlain) > 0 {
		// At least one of the plain explanations must have been empty for
		// this ambiguous query; if not the fixture changed.
		empties := 0
		for _, ex := range rPlain {
			res, err := plain.Execute(ex)
			if err != nil || len(res.Rows) == 0 {
				empties++
			}
		}
		if empties > 0 {
			t.Fatalf("pruning kept %d of %d despite %d empties", len(rPruned), len(rPlain), empties)
		}
	}
	// Every surviving explanation must return tuples.
	for _, ex := range rPruned {
		res, err := pruned.Execute(ex)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("pruned result still empty: %s", ex.SQL)
		}
	}
}

func TestPruneEmptyPreservesMass(t *testing.T) {
	db := fixtureDB(t)
	opts := DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	opts.PruneEmpty = true
	eng := NewEngine(wrapper.NewFullAccessSource(db), opts)
	results, err := eng.Search("dark drama")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Skip("no surviving explanations")
	}
	total := 0.0
	for _, ex := range results {
		total += ex.Belief
	}
	if total > 1+1e-9 {
		t.Fatalf("beliefs sum to %v > 1 after renormalization", total)
	}
	// Order must remain non-increasing.
	for i := 1; i < len(results); i++ {
		if results[i].Belief > results[i-1].Belief+1e-12 {
			t.Fatal("pruning broke the ranking order")
		}
	}
}

func TestPruneEmptyAllEmpty(t *testing.T) {
	db := fixtureDB(t)
	opts := DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	opts.PruneEmpty = true
	eng := NewEngine(wrapper.NewFullAccessSource(db), opts)
	// "golden kurosawa": golden storm exists, kurosawa exists, but no join
	// or single-table combination has both.
	results, err := eng.Search("golden kurosawa")
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range results {
		res, err := eng.Execute(ex)
		if err != nil || len(res.Rows) == 0 {
			t.Fatalf("empty explanation survived: %s", ex.SQL)
		}
	}
}
