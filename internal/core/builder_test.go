package core

import (
	"strings"
	"testing"
)

// buildFor runs the backward module and builder for a configuration against
// the standard fixture engine.
func buildFor(t *testing.T, e *Engine, c *Configuration) *Explanation {
	t.Helper()
	ins, err := e.Backward().TopK(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) == 0 {
		t.Fatal("no interpretation")
	}
	qb := NewQueryBuilder(e.Source().Schema())
	stmt, err := qb.Build(ins[0])
	if err != nil {
		t.Fatal(err)
	}
	return &Explanation{Config: c, Interpretation: ins[0], Stmt: stmt, SQL: stmt.SQL()}
}

func TestBuilderTwoKeywordsSameAttribute(t *testing.T) {
	e := fixtureEngine(t)
	c := &Configuration{
		Keywords: []string{"dark", "night"},
		Terms: []Term{
			{Kind: KindDomain, Table: "movie", Column: "title"},
			{Kind: KindDomain, Table: "movie", Column: "title"},
		},
		Score: 1,
	}
	ex := buildFor(t, e, c)
	// Both keywords must be ANDed on the same attribute.
	if !strings.Contains(ex.SQL, "MATCH 'dark'") || !strings.Contains(ex.SQL, "MATCH 'night'") {
		t.Fatalf("missing predicates: %s", ex.SQL)
	}
	if !strings.Contains(ex.SQL, "AND") {
		t.Fatalf("predicates not conjoined: %s", ex.SQL)
	}
	res, err := e.Execute(ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].AsString(), "dark night") {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBuilderTableTermOnly(t *testing.T) {
	e := fixtureEngine(t)
	c := &Configuration{
		Keywords: []string{"film"},
		Terms:    []Term{{Kind: KindTable, Table: "movie"}},
		Score:    1,
	}
	ex := buildFor(t, e, c)
	// No WHERE clause: a table keyword selects structure, not values.
	if strings.Contains(ex.SQL, "WHERE") {
		t.Fatalf("table-only config must not have predicates: %s", ex.SQL)
	}
	if !strings.Contains(ex.SQL, "FROM movie") {
		t.Fatalf("wrong FROM: %s", ex.SQL)
	}
	res, err := e.Execute(ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("table scan returned nothing")
	}
}

func TestBuilderAttributeTermProjectsColumn(t *testing.T) {
	e := fixtureEngine(t)
	c := &Configuration{
		Keywords: []string{"title"},
		Terms:    []Term{{Kind: KindAttribute, Table: "movie", Column: "title"}},
		Score:    1,
	}
	ex := buildFor(t, e, c)
	if !strings.Contains(ex.SQL, "movie.title") {
		t.Fatalf("attribute term must be projected: %s", ex.SQL)
	}
	if strings.Contains(ex.SQL, "WHERE") {
		t.Fatalf("attribute term must not filter: %s", ex.SQL)
	}
}

func TestBuilderPhraseKeywordQuoting(t *testing.T) {
	e := fixtureEngine(t)
	c := &Configuration{
		Keywords: []string{"dark night"},
		Terms:    []Term{{Kind: KindDomain, Table: "movie", Column: "title"}},
		Score:    1,
	}
	ex := buildFor(t, e, c)
	if !strings.Contains(ex.SQL, "MATCH 'dark night'") {
		t.Fatalf("phrase keyword mangled: %s", ex.SQL)
	}
	res, err := e.Execute(ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("phrase match rows = %d", len(res.Rows))
	}
}

func TestBuilderDistinctAlwaysSet(t *testing.T) {
	e := fixtureEngine(t)
	c := &Configuration{
		Keywords: []string{"drama"},
		Terms:    []Term{{Kind: KindDomain, Table: "movie", Column: "genre"}},
		Score:    1,
	}
	ex := buildFor(t, e, c)
	if !strings.HasPrefix(ex.SQL, "SELECT DISTINCT") {
		t.Fatalf("generated SQL must deduplicate: %s", ex.SQL)
	}
}

func TestBuilderLimitRendered(t *testing.T) {
	e := fixtureEngine(t)
	qb := NewQueryBuilder(e.Source().Schema())
	qb.Limit = 7
	c := &Configuration{
		Keywords: []string{"drama"},
		Terms:    []Term{{Kind: KindDomain, Table: "movie", Column: "genre"}},
		Score:    1,
	}
	ins, err := e.Backward().TopK(c, 1)
	if err != nil || len(ins) == 0 {
		t.Fatalf("backward: %v", err)
	}
	stmt, err := qb.Build(ins[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.SQL(), "LIMIT 7") {
		t.Fatalf("limit not rendered: %s", stmt.SQL())
	}
}

func TestBuilderJoinOrderRootFirst(t *testing.T) {
	e := fixtureEngine(t)
	c := &Configuration{
		Keywords: []string{"spielberg", "drama"},
		Terms: []Term{
			{Kind: KindDomain, Table: "person", Column: "name"},
			{Kind: KindDomain, Table: "movie", Column: "genre"},
		},
		Score: 1,
	}
	ex := buildFor(t, e, c)
	// Every JOIN must reference a previously bound table (executability is
	// the real check, but also assert the shape).
	if _, err := e.Execute(ex); err != nil {
		t.Fatalf("join order broken: %v\n%s", err, ex.SQL)
	}
	if !strings.Contains(ex.SQL, "JOIN") {
		t.Fatalf("cross-table config must join: %s", ex.SQL)
	}
}
