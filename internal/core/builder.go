package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relational"
	"repro/internal/sql"
)

// Explanation is QUEST's final output unit: a configuration (keyword →
// term mapping), an interpretation (join path), the combined Dempster–
// Shafer belief, and the SQL query the pair denotes.
type Explanation struct {
	Config         *Configuration
	Interpretation *Interpretation
	Belief         float64
	Stmt           *sql.SelectStmt
	SQL            string
}

// ID identifies the explanation (same identity as its interpretation:
// configuration + join tree).
func (e *Explanation) ID() string { return e.Interpretation.ID() }

// QueryBuilder renders (configuration, interpretation) pairs into SQL.
type QueryBuilder struct {
	schema *relational.Schema
	// UseLike switches value predicates from MATCH to LIKE '%kw%' for
	// engines without full-text support.
	UseLike bool
	// Limit bounds the number of tuples each generated query returns
	// (0 = no limit).
	Limit int
}

// NewQueryBuilder returns a builder over the given schema.
func NewQueryBuilder(schema *relational.Schema) *QueryBuilder {
	return &QueryBuilder{schema: schema, Limit: 0}
}

// Build renders one explanation's SQL statement:
//
//   - FROM/JOIN follows the interpretation tree's FK edges (a walk rooted
//     at the tree root's table, adding one JOIN per edge);
//   - WHERE gets one `attr MATCH 'kw'` predicate per domain-mapped keyword
//     (LIKE when UseLike);
//   - SELECT projects the keyword-bound attributes plus the primary key of
//     every joined table, deduplicated, in deterministic order.
func (qb *QueryBuilder) Build(in *Interpretation) (*sql.SelectStmt, error) {
	c := in.Config

	// Tables spanned by the tree, plus tables of terms (a single-table
	// configuration may have an empty tree).
	tableSet := make(map[string]bool)
	for _, t := range in.Tables() {
		tableSet[strings.ToLower(t)] = true
	}
	for _, t := range c.Terms {
		tableSet[strings.ToLower(t.Table)] = true
	}
	if len(tableSet) == 0 {
		return nil, fmt.Errorf("core: explanation touches no tables")
	}

	// Root table: table of the tree root vertex when present, else the
	// first term's table.
	var rootTable string
	if in.Tree != nil && in.Graph != nil {
		name := in.Graph.Name(in.Tree.Root)
		if i := strings.IndexByte(name, '.'); i > 0 {
			rootTable = name[:i]
		}
	}
	if rootTable == "" {
		rootTable = strings.ToLower(c.Terms[0].Table)
	}

	stmt := &sql.SelectStmt{Limit: -1}
	if qb.Limit > 0 {
		stmt.Limit = qb.Limit
	}
	stmt.Distinct = true
	stmt.From = sql.TableRef{Table: qb.canonicalTable(rootTable)}

	// Order join steps as a BFS from the root table over the tree's FK
	// edges so every JOIN references an already-bound table.
	joined := map[string]bool{strings.ToLower(rootTable): true}
	steps := in.JoinSteps()
	remaining := append([][4]string(nil), steps...)
	for len(remaining) > 0 {
		progress := false
		var next [][4]string
		for _, s := range remaining {
			ft, fc, tt, tc := strings.ToLower(s[0]), s[1], strings.ToLower(s[2]), s[3]
			switch {
			case joined[ft] && !joined[tt]:
				stmt.Joins = append(stmt.Joins, qb.joinClause(tt, tc, ft, fc))
				joined[tt] = true
				progress = true
			case joined[tt] && !joined[ft]:
				stmt.Joins = append(stmt.Joins, qb.joinClause(ft, fc, tt, tc))
				joined[ft] = true
				progress = true
			case joined[ft] && joined[tt]:
				// Both already joined (tree edge closing within visited
				// set cannot happen in a tree; ignore defensively).
			default:
				next = append(next, s)
			}
		}
		if !progress {
			return nil, fmt.Errorf("core: interpretation tree is not connected to root %s", rootTable)
		}
		remaining = next
	}

	// WHERE: one predicate per domain-mapped keyword.
	var where sql.Expr
	for i, t := range c.Terms {
		if t.Kind != KindDomain || i >= len(c.Keywords) {
			continue
		}
		pred := qb.valuePredicate(t, c.Keywords[i])
		if where == nil {
			where = pred
		} else {
			where = &sql.BinaryExpr{Op: sql.OpAnd, Left: where, Right: pred}
		}
	}
	stmt.Where = where

	// SELECT list: keyword-bound attributes first, then PKs of joined
	// tables; deduplicated.
	type colref struct{ table, column string }
	var sel []colref
	seen := make(map[string]bool)
	add := func(table, column string) {
		key := strings.ToLower(table) + "." + strings.ToLower(column)
		if seen[key] {
			return
		}
		seen[key] = true
		sel = append(sel, colref{table: table, column: column})
	}
	for _, t := range c.Terms {
		if t.Kind == KindTable {
			continue
		}
		add(t.Table, t.Column)
	}
	var tables []string
	for t := range joined {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		ts := qb.schema.Table(t)
		if ts == nil {
			continue
		}
		if ts.PrimaryKey != "" {
			add(ts.Name, ts.PrimaryKey)
		}
		// Add a representative label column so results are readable: the
		// first string attribute, if any.
		for _, col := range ts.Columns {
			if col.Type == relational.TypeString {
				add(ts.Name, col.Name)
				break
			}
		}
	}
	for _, cr := range sel {
		ts := qb.schema.Table(cr.table)
		name := cr.column
		if ts != nil {
			if col := ts.Column(cr.column); col != nil {
				name = col.Name
			}
		}
		stmt.Items = append(stmt.Items, sql.SelectItem{
			Expr: &sql.ColumnRef{Table: qb.canonicalTable(cr.table), Column: name},
		})
	}
	if len(stmt.Items) == 0 {
		stmt.Items = []sql.SelectItem{{Star: true}}
	}
	return stmt, nil
}

func (qb *QueryBuilder) canonicalTable(name string) string {
	if ts := qb.schema.Table(name); ts != nil {
		return ts.Name
	}
	return name
}

func (qb *QueryBuilder) canonicalColumn(table, column string) string {
	if ts := qb.schema.Table(table); ts != nil {
		if c := ts.Column(column); c != nil {
			return c.Name
		}
	}
	return column
}

func (qb *QueryBuilder) joinClause(newTable, newCol, boundTable, boundCol string) sql.JoinClause {
	return sql.JoinClause{
		Table: sql.TableRef{Table: qb.canonicalTable(newTable)},
		On: &sql.BinaryExpr{
			Op: sql.OpEq,
			Left: &sql.ColumnRef{
				Table:  qb.canonicalTable(newTable),
				Column: qb.canonicalColumn(newTable, newCol),
			},
			Right: &sql.ColumnRef{
				Table:  qb.canonicalTable(boundTable),
				Column: qb.canonicalColumn(boundTable, boundCol),
			},
		},
	}
}

func (qb *QueryBuilder) valuePredicate(t Term, keyword string) sql.Expr {
	col := &sql.ColumnRef{
		Table:  qb.canonicalTable(t.Table),
		Column: qb.canonicalColumn(t.Table, t.Column),
	}
	// Numeric columns get equality when the keyword parses as a number.
	if ts := qb.schema.Table(t.Table); ts != nil {
		if c := ts.Column(t.Column); c != nil && (c.Type == relational.TypeInt || c.Type == relational.TypeFloat) {
			if v, err := relational.Coerce(relational.String_(keyword), c.Type); err == nil {
				return &sql.BinaryExpr{Op: sql.OpEq, Left: col, Right: &sql.Literal{Value: v}}
			}
		}
	}
	if qb.UseLike {
		return &sql.BinaryExpr{
			Op:    sql.OpLike,
			Left:  col,
			Right: &sql.Literal{Value: relational.String_("%" + keyword + "%")},
		}
	}
	return &sql.BinaryExpr{
		Op:    sql.OpMatch,
		Left:  col,
		Right: &sql.Literal{Value: relational.String_(keyword)},
	}
}

// RenderTree draws the portion of the database touched by an explanation as
// an ASCII graph: tables as boxes listing their bound attributes, joins as
// arrows — the "graphical representation of the portion of the database
// involved by the query" of the paper's fifth demonstration message.
func RenderTree(e *Explanation) string {
	in := e.Interpretation
	var b strings.Builder
	kwByAttr := make(map[string][]string)
	for i, t := range e.Config.Terms {
		if i >= len(e.Config.Keywords) {
			continue
		}
		key := strings.ToLower(t.Table) + "." + strings.ToLower(t.Column)
		if t.Kind == KindTable {
			key = strings.ToLower(t.Table)
		}
		kwByAttr[key] = append(kwByAttr[key], fmt.Sprintf("%q(%s)", e.Config.Keywords[i], t.Kind))
	}
	tables := in.Tables()
	if len(tables) == 0 {
		tables = e.Config.Tables()
	}
	for _, t := range tables {
		fmt.Fprintf(&b, "[%s]", t)
		if kws := kwByAttr[strings.ToLower(t)]; len(kws) > 0 {
			fmt.Fprintf(&b, " <= %s", strings.Join(kws, ", "))
		}
		b.WriteString("\n")
		verts := attrVerticesOf(in, t)
		for _, v := range verts {
			col := v[strings.IndexByte(v, '.')+1:]
			fmt.Fprintf(&b, "  .%s", col)
			if kws := kwByAttr[v]; len(kws) > 0 {
				fmt.Fprintf(&b, " <= %s", strings.Join(kws, ", "))
			}
			b.WriteString("\n")
		}
	}
	for _, s := range in.JoinSteps() {
		fmt.Fprintf(&b, "(%s.%s) ==JOIN== (%s.%s)\n", s[0], s[1], s[2], s[3])
	}
	return b.String()
}

func attrVerticesOf(in *Interpretation, table string) []string {
	var out []string
	seen := make(map[string]bool)
	collect := func(v int) {
		name := in.Graph.Name(v)
		if strings.HasPrefix(name, strings.ToLower(table)+".") && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	if in.Tree != nil {
		for _, v := range in.Tree.Vertices() {
			collect(v)
		}
	}
	sort.Strings(out)
	return out
}
