package core

import (
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/wrapper"
)

// fixtureDB builds a three-table movie database with enough content for
// forward/backward decoding tests.
func fixtureDB(t testing.TB) *relational.Database {
	t.Helper()
	s := relational.NewSchema()
	add := func(ts *relational.TableSchema) {
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	add(&relational.TableSchema{
		Name:        "movie",
		Annotations: []string{"film"},
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString},
			{Name: "genre", Type: relational.TypeString},
			{Name: "year", Type: relational.TypeInt, Pattern: `(19|20)\d\d`},
		},
		PrimaryKey: "movie_id",
	})
	add(&relational.TableSchema{
		Name:        "person",
		Annotations: []string{"actor", "people"},
		Columns: []relational.Column{
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString},
		},
		PrimaryKey: "person_id",
	})
	add(&relational.TableSchema{
		Name: "cast_info",
		Columns: []relational.Column{
			{Name: "cast_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
		},
		PrimaryKey: "cast_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
			{Column: "person_id", RefTable: "person", RefColumn: "person_id"},
		},
	})
	db := relational.MustNewDatabase("movies", s)
	I, S := relational.Int, relational.String_
	movies := []relational.Row{
		{I(1), S("the dark night"), S("thriller"), I(2008)},
		{I(2), S("silent river"), S("drama"), I(1994)},
		{I(3), S("dark river"), S("drama"), I(2001)},
		{I(4), S("golden storm"), S("comedy"), I(1999)},
	}
	for _, r := range movies {
		if err := db.Insert("movie", r); err != nil {
			t.Fatal(err)
		}
	}
	people := []relational.Row{
		{I(1), S("alice kurosawa")},
		{I(2), S("bob spielberg")},
		{I(3), S("carol smith")},
		// "dark" appears both in titles and in a person name: queries with
		// "dark" are genuinely ambiguous, which several tests rely on.
		{I(4), S("dave dark")},
	}
	for _, r := range people {
		if err := db.Insert("person", r); err != nil {
			t.Fatal(err)
		}
	}
	casts := []relational.Row{
		{I(1), I(1), I(1)},
		{I(2), I(2), I(2)},
		{I(3), I(3), I(3)},
		{I(4), I(2), I(3)},
		{I(5), I(3), I(4)},
	}
	for _, r := range casts {
		if err := db.Insert("cast_info", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func fixtureEngine(t testing.TB) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	return NewEngine(wrapper.NewFullAccessSource(fixtureDB(t)), opts)
}

func TestTermSpaceEnumeration(t *testing.T) {
	db := fixtureDB(t)
	space := NewTermSpace(db.Schema)
	// 3 tables + (4+2+3) attributes ×2 (attribute + domain) = 3 + 18 = 21.
	if space.Len() != 21 {
		t.Fatalf("term space = %d states, want 21", space.Len())
	}
	// Index round trip.
	term := Term{Kind: KindDomain, Table: "movie", Column: "title"}
	i := space.Index(term)
	if i < 0 || space.Terms[i].ID() != term.ID() {
		t.Fatalf("index round trip failed: %d", i)
	}
	if space.Index(Term{Kind: KindTable, Table: "nope"}) != -1 {
		t.Fatal("unknown term must be -1")
	}
	if space.IndexOfID("T:movie") < 0 {
		t.Fatal("IndexOfID failed")
	}
}

func TestTermIDs(t *testing.T) {
	tests := []struct {
		term Term
		want string
	}{
		{Term{Kind: KindTable, Table: "Movie"}, "T:movie"},
		{Term{Kind: KindAttribute, Table: "Movie", Column: "Title"}, "A:movie.title"},
		{Term{Kind: KindDomain, Table: "movie", Column: "title"}, "D:movie.title"},
	}
	for _, tt := range tests {
		if got := tt.term.ID(); got != tt.want {
			t.Errorf("ID() = %q, want %q", got, tt.want)
		}
	}
}

func TestTokenizeQueries(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"dark river", []string{"dark", "river"}},
		{`"new york" population`, []string{"new york", "population"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"a,b", []string{"a", "b"}},
		{"", nil},
		{`"unterminated phrase`, []string{"unterminated phrase"}},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if len(got) != len(tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

func TestForwardValueKeywordMapsToDomain(t *testing.T) {
	e := fixtureEngine(t)
	configs := e.Forward().TopKApriori([]string{"spielberg"}, 5)
	if len(configs) == 0 {
		t.Fatal("no configurations")
	}
	top := configs[0]
	if top.Terms[0].ID() != "D:person.name" {
		t.Fatalf("spielberg mapped to %s, want D:person.name", top.Terms[0].ID())
	}
}

func TestForwardSchemaKeywordMapsToTableOrAttribute(t *testing.T) {
	e := fixtureEngine(t)
	configs := e.Forward().TopKApriori([]string{"film"}, 5)
	if len(configs) == 0 {
		t.Fatal("no configurations")
	}
	if configs[0].Terms[0].ID() != "T:movie" {
		t.Fatalf("film mapped to %s, want T:movie", configs[0].Terms[0].ID())
	}
	// Attribute keyword.
	configs = e.Forward().TopKApriori([]string{"title", "dark"}, 5)
	if len(configs) == 0 {
		t.Fatal("no configurations for title dark")
	}
	found := false
	for _, c := range configs {
		if c.Terms[0].ID() == "A:movie.title" && c.Terms[1].ID() == "D:movie.title" {
			found = true
		}
	}
	if !found {
		t.Fatalf("title→A:movie.title, dark→D:movie.title not in top-k: %v", configs)
	}
}

func TestForwardTopKDistinctAndSorted(t *testing.T) {
	e := fixtureEngine(t)
	configs := e.Forward().TopKApriori([]string{"dark", "drama"}, 8)
	seen := map[string]bool{}
	for i, c := range configs {
		if seen[c.ID()] {
			t.Fatalf("duplicate configuration %s", c.ID())
		}
		seen[c.ID()] = true
		if i > 0 && configs[i].Score > configs[i-1].Score+1e-12 {
			t.Fatal("configurations must be sorted by descending score")
		}
		if len(c.Terms) != 2 {
			t.Fatalf("config arity = %d", len(c.Terms))
		}
	}
}

func TestForwardUnknownKeywordYieldsNothingOrWeak(t *testing.T) {
	e := fixtureEngine(t)
	configs := e.Forward().TopKApriori([]string{"xyzzyplugh"}, 5)
	// The keyword matches no value and no schema term: no configuration.
	if len(configs) != 0 {
		t.Fatalf("unknown keyword produced %d configs", len(configs))
	}
}

func TestForwardFeedbackShiftsDecoding(t *testing.T) {
	e := fixtureEngine(t)
	kw := []string{"dark", "drama"}
	gold := &Configuration{
		Keywords: kw,
		Terms: []Term{
			{Kind: KindDomain, Table: "movie", Column: "title"},
			{Kind: KindDomain, Table: "movie", Column: "genre"},
		},
	}
	// Train heavily on the gold configuration.
	var batch []*Configuration
	for i := 0; i < 20; i++ {
		batch = append(batch, gold)
	}
	e.AddFeedback(batch)
	if !e.Forward().HasFeedback() {
		t.Fatal("feedback not registered")
	}
	if e.Forward().FeedbackCount() != 20 {
		t.Fatalf("feedback count = %d", e.Forward().FeedbackCount())
	}
	configs := e.Forward().TopKFeedback(kw, 3)
	if len(configs) == 0 {
		t.Fatal("feedback decode returned nothing")
	}
	if configs[0].ID() != gold.ID() {
		t.Fatalf("feedback top config = %s, want %s", configs[0].ID(), gold.ID())
	}
}

func TestBackwardTerminals(t *testing.T) {
	e := fixtureEngine(t)
	c := &Configuration{
		Keywords: []string{"spielberg", "drama"},
		Terms: []Term{
			{Kind: KindDomain, Table: "person", Column: "name"},
			{Kind: KindDomain, Table: "movie", Column: "genre"},
		},
	}
	terms, err := e.Backward().Terminals(c)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"movie.genre", "person.name"}
	if len(terms) != 2 || terms[0] != want[0] || terms[1] != want[1] {
		t.Fatalf("terminals = %v, want %v", terms, want)
	}
	// Table term anchors on the PK.
	c2 := &Configuration{
		Keywords: []string{"film"},
		Terms:    []Term{{Kind: KindTable, Table: "movie"}},
	}
	terms, err = e.Backward().Terminals(c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 1 || terms[0] != "movie.movie_id" {
		t.Fatalf("table terminal = %v", terms)
	}
	// Unknown table errors.
	if _, err := e.Backward().Terminals(&Configuration{
		Terms: []Term{{Kind: KindTable, Table: "nope"}},
	}); err == nil {
		t.Fatal("unknown table must error")
	}
}

func TestBackwardCrossTableInterpretation(t *testing.T) {
	e := fixtureEngine(t)
	c := &Configuration{
		Keywords: []string{"spielberg", "drama"},
		Terms: []Term{
			{Kind: KindDomain, Table: "person", Column: "name"},
			{Kind: KindDomain, Table: "movie", Column: "genre"},
		},
		Score: 1,
	}
	interps, err := e.Backward().TopK(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(interps) == 0 {
		t.Fatal("no interpretations")
	}
	top := interps[0]
	tables := top.Tables()
	if len(tables) != 3 || tables[0] != "cast_info" || tables[1] != "movie" || tables[2] != "person" {
		t.Fatalf("tables = %v, want the join through cast_info", tables)
	}
	steps := top.JoinSteps()
	if len(steps) != 2 {
		t.Fatalf("join steps = %v", steps)
	}
	if top.Score <= 0 || top.Score > 1 {
		t.Fatalf("score = %v", top.Score)
	}
}

func TestBackwardSchemaGraphShape(t *testing.T) {
	e := fixtureEngine(t)
	g := e.Backward().Graph()
	// One node per attribute: 4 + 2 + 3 = 9.
	if g.Len() != 9 {
		t.Fatalf("graph nodes = %d, want 9", g.Len())
	}
	// Intra edges: (4-1)+(2-1)+(3-1) = 6; FK edges: 2. Total 8.
	if g.EdgeCount() != 8 {
		t.Fatalf("graph edges = %d, want 8", g.EdgeCount())
	}
}

func TestBuilderGeneratesExecutableSQL(t *testing.T) {
	e := fixtureEngine(t)
	results, err := e.Search("spielberg drama")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no explanations")
	}
	for _, ex := range results {
		// Every generated query must parse and execute on the engine.
		stmt, err := sql.Parse(ex.SQL)
		if err != nil {
			t.Fatalf("generated SQL does not parse: %v\n%s", err, ex.SQL)
		}
		if _, err := e.Execute(ex); err != nil {
			t.Fatalf("generated SQL does not execute: %v\n%s", err, ex.SQL)
		}
		if stmt.SQL() != ex.SQL {
			t.Fatalf("SQL rendering unstable:\n%s\n%s", stmt.SQL(), ex.SQL)
		}
	}
}

func TestSearchFindsGoldJoin(t *testing.T) {
	e := fixtureEngine(t)
	results, err := e.Search("spielberg drama")
	if err != nil {
		t.Fatal(err)
	}
	// The person+cast+movie join with both predicates must be among the
	// top explanations, and its execution must return a non-empty result
	// (bob spielberg played in silent river, a drama).
	for _, ex := range results {
		tables := ex.Interpretation.Tables()
		if len(tables) == 3 && strings.Contains(ex.SQL, "MATCH 'spielberg'") &&
			strings.Contains(ex.SQL, "MATCH 'drama'") {
			res, err := e.Execute(ex)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("gold join returned no tuples")
			}
			return
		}
	}
	t.Fatalf("gold join not found in %d explanations", len(results))
}

func TestSearchEmptyQuery(t *testing.T) {
	e := fixtureEngine(t)
	if _, err := e.Search("   "); err == nil {
		t.Fatal("empty query must error")
	}
}

func TestSearchUnknownKeywords(t *testing.T) {
	e := fixtureEngine(t)
	results, err := e.Search("qqqq zzzz")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("unknown keywords returned %d explanations", len(results))
	}
}

func TestSearchBeliefsSortedAndBounded(t *testing.T) {
	e := fixtureEngine(t)
	results, err := e.Search("dark drama")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	total := 0.0
	for i, ex := range results {
		if ex.Belief < 0 || ex.Belief > 1 {
			t.Fatalf("belief out of range: %v", ex.Belief)
		}
		total += ex.Belief
		if i > 0 && results[i].Belief > results[i-1].Belief+1e-12 {
			t.Fatal("beliefs must be non-increasing")
		}
	}
	if total > 1+1e-9 {
		t.Fatalf("beliefs sum to %v > 1", total)
	}
}

func TestSearchRespectsK(t *testing.T) {
	opts := DefaultOptions()
	opts.K = 3
	opts.Thesaurus = ontology.DefaultThesaurus()
	e := NewEngine(wrapper.NewFullAccessSource(fixtureDB(t)), opts)
	results, err := e.Search("dark drama")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) > 3 {
		t.Fatalf("got %d results, want <= 3", len(results))
	}
}

func TestUncertaintyShiftsExplanationRanking(t *testing.T) {
	// With backward evidence trusted (low OI), interpretations with cheap
	// trees (single table) gain; with forward trusted (low OC), the
	// configuration belief dominates. The rankings must be able to differ.
	e1 := fixtureEngine(t)
	e1.SetUncertainty(Uncertainty{OCap: 0.2, OCf: 0.8, OC: 0.05, OI: 0.9})
	r1, err := e1.Search("dark drama")
	if err != nil {
		t.Fatal(err)
	}
	e2 := fixtureEngine(t)
	e2.SetUncertainty(Uncertainty{OCap: 0.2, OCf: 0.8, OC: 0.9, OI: 0.05})
	r2, err := e2.Search("dark drama")
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) == 0 || len(r2) == 0 {
		t.Fatal("empty results")
	}
	// Belief distributions must differ (adaptation knob works).
	if len(r1) == len(r2) {
		same := true
		for i := range r1 {
			if r1[i].ID() != r2[i].ID() || abs(r1[i].Belief-r2[i].Belief) > 1e-9 {
				same = false
				break
			}
		}
		if same {
			t.Fatal("uncertainty settings had no effect on the ranking")
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestDisableModes(t *testing.T) {
	opts := DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	opts.DisableFeedback = true
	e := NewEngine(wrapper.NewFullAccessSource(fixtureDB(t)), opts)
	configs, err := e.Configurations([]string{"dark"})
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) == 0 {
		t.Fatal("a-priori only mode returned nothing")
	}
	for _, c := range configs {
		if c.Mode != "a-priori" {
			t.Fatalf("mode = %s, want a-priori", c.Mode)
		}
	}
	opts.DisableFeedback = false
	opts.DisableApriori = true
	e2 := NewEngine(wrapper.NewFullAccessSource(fixtureDB(t)), opts)
	configs2, err := e2.Configurations([]string{"dark"})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range configs2 {
		if c.Mode != "feedback" {
			t.Fatalf("mode = %s, want feedback", c.Mode)
		}
	}
}

func TestConfigurationsCombinedMode(t *testing.T) {
	e := fixtureEngine(t)
	configs, err := e.Configurations([]string{"dark", "drama"})
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) == 0 {
		t.Fatal("no combined configurations")
	}
	total := 0.0
	for _, c := range configs {
		if c.Mode != "combined" {
			t.Fatalf("mode = %s", c.Mode)
		}
		total += c.Score
	}
	if total > 1+1e-9 {
		t.Fatalf("combined beliefs sum to %v", total)
	}
}

func TestRenderTreeContainsStructure(t *testing.T) {
	e := fixtureEngine(t)
	results, err := e.Search("spielberg drama")
	if err != nil || len(results) == 0 {
		t.Fatalf("search failed: %v", err)
	}
	var joined *Explanation
	for _, ex := range results {
		if len(ex.Interpretation.Tables()) == 3 {
			joined = ex
			break
		}
	}
	if joined == nil {
		t.Skip("no 3-table explanation in top-k")
	}
	out := RenderTree(joined)
	for _, frag := range []string{"[movie]", "[person]", "[cast_info]", "==JOIN=="} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestMetadataOnlyEngineEndToEnd(t *testing.T) {
	db := fixtureDB(t)
	opts := DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	opts.UseLike = true
	e := NewEngine(wrapper.HiddenSourceFor(db, opts.Thesaurus), opts)
	results, err := e.Search("1994 film")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("hidden source returned no explanations")
	}
	// Year pattern must have routed 1994 to movie.year.
	found := false
	for _, ex := range results {
		for i, term := range ex.Config.Terms {
			if ex.Config.Keywords[i] == "1994" && term.ID() == "D:movie.year" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("1994 not mapped to movie.year via pattern evidence")
	}
	// Queries must execute through the endpoint.
	if _, err := e.Execute(results[0]); err != nil {
		t.Fatal(err)
	}
}

func TestQueryBuilderLikeMode(t *testing.T) {
	e := fixtureEngine(t)
	eb := NewQueryBuilder(e.Source().Schema())
	eb.UseLike = true
	c := &Configuration{
		Keywords: []string{"dark"},
		Terms:    []Term{{Kind: KindDomain, Table: "movie", Column: "title"}},
		Score:    1,
	}
	ins, err := e.Backward().TopK(c, 1)
	if err != nil || len(ins) == 0 {
		t.Fatalf("backward failed: %v", err)
	}
	stmt, err := eb.Build(ins[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.SQL(), "LIKE '%dark%'") {
		t.Fatalf("LIKE predicate missing: %s", stmt.SQL())
	}
}

func TestQueryBuilderNumericEquality(t *testing.T) {
	e := fixtureEngine(t)
	qb := NewQueryBuilder(e.Source().Schema())
	c := &Configuration{
		Keywords: []string{"1994"},
		Terms:    []Term{{Kind: KindDomain, Table: "movie", Column: "year"}},
		Score:    1,
	}
	ins, err := e.Backward().TopK(c, 1)
	if err != nil || len(ins) == 0 {
		t.Fatalf("backward failed: %v", err)
	}
	stmt, err := qb.Build(ins[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.SQL(), "movie.year = 1994") {
		t.Fatalf("numeric keyword must become equality: %s", stmt.SQL())
	}
}
