package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sql"
)

// corruptDir builds a directory whose log holds nOps single-op records
// (MaxWait 0, every append waited, one writer → one record per op) and
// returns it along with each record's start offset and the total size.
func corruptDir(t *testing.T, nOps int) (dir string, offsets []int64, size int64) {
	t.Helper()
	dir = t.TempDir()
	l, _, err := Open(dir, walBase(t, 2), Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, 1, nOps)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw := readLog(t, dir)
	size = int64(len(raw))
	for off := int64(0); off < size; {
		offsets = append(offsets, off)
		n := binary.BigEndian.Uint32(raw[off : off+4])
		off += recordHeader + int64(n)
	}
	if len(offsets) != nOps {
		t.Fatalf("built %d records, want %d (batching in a serial test?)", len(offsets), nOps)
	}
	return dir, offsets, size
}

func readLog(t *testing.T, dir string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, logFile))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func writeLog(t *testing.T, dir string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, logFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTornFinalRecordRecoversToLastBatch(t *testing.T) {
	for _, cut := range []struct {
		name string
		trim int64 // bytes to keep past the final record's start
	}{
		{"mid-header", 3},
		{"mid-payload", recordHeader + 5},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir, offsets, _ := corruptDir(t, 5)
			last := offsets[len(offsets)-1]
			raw := readLog(t, dir)
			writeLog(t, dir, raw[:last+cut.trim])

			l, rec, err := Open(dir, emptyBase(t), Options{NoFsync: true})
			if err != nil {
				t.Fatalf("torn final record must recover, got %v", err)
			}
			defer l.Close()
			if rec.LastSeq != 4 || rec.ReplayedOps != 4 {
				t.Fatalf("recovery = %+v, want LastSeq 4 ReplayedOps 4", rec)
			}
			if rec.TornBytes != cut.trim {
				t.Fatalf("TornBytes = %d, want %d", rec.TornBytes, cut.trim)
			}
			if n := rec.DB.Table("movie").Len(); n != 6 { // 2 base + 4 ops
				t.Fatalf("rows = %d, want 6", n)
			}
			// The torn tail is gone: the file ends on the last complete
			// record and appending continues from there.
			if fi, _ := os.Stat(filepath.Join(dir, logFile)); fi.Size() != last {
				t.Fatalf("log size %d after torn recovery, want %d", fi.Size(), last)
			}
			appendOps(t, l, 5, 1)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, rec2, err := Open(dir, emptyBase(t), Options{NoFsync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if rec2.LastSeq != 5 || rec2.TornBytes != 0 {
				t.Fatalf("second recovery = %+v", rec2)
			}
		})
	}
}

func TestMidLogCRCMismatchIsTypedCorruption(t *testing.T) {
	dir, offsets, _ := corruptDir(t, 5)
	raw := readLog(t, dir)
	raw[offsets[2]+recordHeader] ^= 0xff // flip a payload byte mid-log
	writeLog(t, dir, raw)

	_, _, err := Open(dir, emptyBase(t), Options{NoFsync: true})
	if err == nil {
		t.Fatal("corrupt mid-log record did not fail recovery")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want errors.Is(err, ErrCorrupt)", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CorruptError", err)
	}
	if ce.Offset != offsets[2] {
		t.Fatalf("corruption offset = %d, want %d", ce.Offset, offsets[2])
	}
}

func TestImpossibleLengthIsTypedCorruption(t *testing.T) {
	for _, bad := range []uint32{0, 0xffffffff} {
		dir, offsets, _ := corruptDir(t, 4)
		raw := readLog(t, dir)
		binary.BigEndian.PutUint32(raw[offsets[1]:offsets[1]+4], bad)
		writeLog(t, dir, raw)
		_, _, err := Open(dir, emptyBase(t), Options{NoFsync: true})
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("length %d: err = %v, want ErrCorrupt", bad, err)
		}
	}
}

func TestSequenceRegressionIsTypedCorruption(t *testing.T) {
	dir, _, _ := corruptDir(t, 2)
	// Append a validly framed record whose sequence rolls back to 1.
	payload := binary.AppendUvarint(nil, 1) // opCount
	payload = binary.AppendUvarint(payload, 1)
	payload = appendString(payload, "movie")
	payload = sql.AppendRow(payload, opRow(99))
	raw := readLog(t, dir)
	raw = appendFramed(raw, payload)
	writeLog(t, dir, raw)
	_, _, err := Open(dir, emptyBase(t), Options{NoFsync: true})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sequence regression: err = %v, want ErrCorrupt", err)
	}
}

func TestTrailingPayloadBytesAreTypedCorruption(t *testing.T) {
	dir, _, _ := corruptDir(t, 1)
	payload := binary.AppendUvarint(nil, 1)
	payload = binary.AppendUvarint(payload, 2)
	payload = appendString(payload, "movie")
	payload = sql.AppendRow(payload, opRow(2))
	payload = append(payload, 0xde, 0xad) // CRC covers them, decode must not
	raw := appendFramed(readLog(t, dir), payload)
	writeLog(t, dir, raw)
	_, _, err := Open(dir, emptyBase(t), Options{NoFsync: true})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing payload bytes: err = %v, want ErrCorrupt", err)
	}
}

func TestReplayIntoConflictingTableIsTypedCorruption(t *testing.T) {
	// A log op whose PK duplicates a snapshotted row can only mean the
	// dir's files disagree — surfaced as corruption, not a panic.
	dir, offsets, _ := corruptDir(t, 3)
	raw := readLog(t, dir)
	// Duplicate record 1 (seq 2) after itself at a bumped sequence.
	rec1 := raw[offsets[1]:offsets[2]]
	n := binary.BigEndian.Uint32(rec1[0:4])
	dup := make([]byte, n)
	copy(dup, rec1[recordHeader:])
	// rewrite seq 2 → 4 (single-byte uvarints: opCount at 0, seq at 1)
	if dup[1] != 2 {
		t.Fatalf("test assumes single-byte seq, got %d", dup[1])
	}
	dup[1] = 4
	raw = appendFramed(raw, dup)
	writeLog(t, dir, raw)
	_, _, err := Open(dir, emptyBase(t), Options{NoFsync: true})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate-PK replay: err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptSnapshotIsTypedError(t *testing.T) {
	dir, _, _ := corruptDir(t, 2)
	path := filepath.Join(dir, snapshotFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, emptyBase(t), Options{NoFsync: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: err = %v, want ErrCorrupt", err)
	}

	// Truncated below the header is equally typed.
	if err := os.WriteFile(path, raw[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, emptyBase(t), Options{NoFsync: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated snapshot: err = %v, want ErrCorrupt", err)
	}
}

// appendFramed frames payload as a record (correct length + CRC) and
// appends it to raw.
func appendFramed(raw, payload []byte) []byte {
	var hdr [recordHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	raw = append(raw, hdr[:]...)
	return append(raw, payload...)
}
