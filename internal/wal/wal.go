package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
)

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// castagnoli is the CRC-32C polynomial table shared by records and
// snapshots.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	logFile      = "wal.log"
	snapshotFile = "snapshot"
	snapshotTmp  = "snapshot.tmp"

	recordHeader = 8 // uint32 length + uint32 CRC-32C
)

// Options tunes group commit and the snapshot policy. The zero value is
// safe: every batch is fsynced, flushes never linger, and snapshots are
// taken only when Checkpoint is called explicitly.
type Options struct {
	// BatchSize caps how many appends share one record (and one fsync).
	// 0 means DefaultBatchSize.
	BatchSize int

	// MaxWait bounds how long a flush lingers for more appends once at
	// least one more is known to be in flight. 0 means no lingering:
	// the flusher writes whatever has been submitted by the time it is
	// free, which already batches concurrent writers (appends queue
	// while the previous fsync runs) without adding latency for a lone
	// writer.
	MaxWait time.Duration

	// NoFsync skips the fsync after each batch (and after snapshots).
	// The log is then only as durable as the OS page cache — fine for
	// tests and process-crash tolerance, wrong for power failure.
	NoFsync bool

	// SnapshotEvery asks ShouldCheckpoint to request a checkpoint after
	// this many appends since the last one. 0 disables the policy;
	// Checkpoint can always be called explicitly.
	SnapshotEvery int

	// MaxRecord bounds a record's payload length; anything larger found
	// in the log is corruption ("impossible length"). 0 means
	// DefaultMaxRecord.
	MaxRecord int
}

// Defaults for Options zero fields.
const (
	DefaultBatchSize = 64
	DefaultMaxRecord = 16 << 20
)

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.MaxWait < 0 {
		o.MaxWait = 0
	}
	if o.MaxRecord <= 0 {
		o.MaxRecord = DefaultMaxRecord
	}
	return o
}

// Stats is a point-in-time snapshot of a Log's counters, flat uint64
// fields in the transport.ClientStats style so callers can diff
// snapshots without histogram dependencies.
type Stats struct {
	Appends       uint64 // ops appended
	Batches       uint64 // group-commit records written
	Fsyncs        uint64 // fsyncs issued for batches
	BatchMax      uint64 // largest batch (ops) written — high-water mark
	CommitWaitNs  uint64 // total ns appenders spent from submit to durable
	BytesAppended uint64 // log bytes written, headers included

	Snapshots        uint64 // checkpoints completed
	SnapshotNs       uint64 // total ns spent checkpointing
	SnapshotFailures uint64 // checkpoints that failed (log kept intact)

	RecoveredSeq        uint64 // sequence recovered at Open
	RecoveryReplayedOps uint64 // ops replayed from the log tail at Open
	RecoveryNs          uint64 // wall time of Open's recovery
}

// Commit is the handle returned by Append. Wait blocks until the op's
// group-commit batch is durable (or failed) and is safe to call more
// than once.
type Commit struct {
	ch   chan error
	once sync.Once
	err  error
}

// Wait returns the outcome of the batch flush covering this append.
func (c *Commit) Wait() error {
	c.once.Do(func() {
		if c.ch != nil {
			c.err = <-c.ch
		}
	})
	return c.err
}

// appendReq is one unit of work for the flusher: either an encoded op
// or a barrier (flush everything submitted before me, then ack).
type appendReq struct {
	payload   []byte
	submitted time.Time
	barrier   bool
	done      chan error
}

// Log is a shard's durability subsystem: an append-only group-commit
// log plus a snapshot of the recovered database. Append may be called
// concurrently, but sequences must be handed out in increasing order
// (the transport server's replMu provides that). Checkpoint and Close
// must not race Append.
type Log struct {
	dir string
	opt Options
	db  *relational.Database

	f    *os.File
	reqs chan *appendReq
	// pending counts appends submitted but not yet flushed; the flusher
	// uses it to flush immediately when every in-flight append is
	// already in hand (a lone writer never pays MaxWait).
	pending atomic.Int64
	stopc   chan struct{}
	done    chan struct{}
	closed  atomic.Bool

	lastSeq   atomic.Uint64
	sinceSnap atomic.Uint64

	appends       atomic.Uint64
	batches       atomic.Uint64
	fsyncs        atomic.Uint64
	batchMax      atomic.Uint64
	commitWaitNs  atomic.Uint64
	bytesAppended atomic.Uint64
	snapshots     atomic.Uint64
	snapshotNs    atomic.Uint64
	snapFailures  atomic.Uint64

	// set once during Open, before the flusher starts
	recoveredSeq uint64
	recoveredOps uint64
	recoveryNs   uint64

	// testFlushDelay stretches every flush (tests only: it stands in
	// for fsync latency so group-commit pileup is deterministic).
	testFlushDelay time.Duration
}

// Database returns the recovered database this log is attached to.
func (l *Log) Database() *relational.Database { return l.db }

// Dir returns the WAL directory.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the highest sequence appended or recovered.
func (l *Log) LastSeq() uint64 { return l.lastSeq.Load() }

// SinceCheckpoint returns the number of appends since the last
// checkpoint (or since Open).
func (l *Log) SinceCheckpoint() uint64 { return l.sinceSnap.Load() }

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:             l.appends.Load(),
		Batches:             l.batches.Load(),
		Fsyncs:              l.fsyncs.Load(),
		BatchMax:            l.batchMax.Load(),
		CommitWaitNs:        l.commitWaitNs.Load(),
		BytesAppended:       l.bytesAppended.Load(),
		Snapshots:           l.snapshots.Load(),
		SnapshotNs:          l.snapshotNs.Load(),
		SnapshotFailures:    l.snapFailures.Load(),
		RecoveredSeq:        l.recoveredSeq,
		RecoveryReplayedOps: l.recoveredOps,
		RecoveryNs:          l.recoveryNs,
	}
}

// Append submits one op for durable logging and returns immediately
// with a Commit handle; the write is acknowledged by Commit.Wait once
// its batch reaches disk. seq is the op's replication sequence and must
// exceed every previously appended sequence.
func (l *Log) Append(seq uint64, table string, row relational.Row) *Commit {
	if l.closed.Load() {
		return &Commit{err: ErrClosed}
	}
	p := binary.AppendUvarint(nil, seq)
	p = appendString(p, table)
	p = sql.AppendRow(p, row)
	req := &appendReq{payload: p, submitted: time.Now(), done: make(chan error, 1)}
	for {
		cur := l.lastSeq.Load()
		if seq <= cur || l.lastSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	l.sinceSnap.Add(1)
	l.pending.Add(1)
	l.reqs <- req
	return &Commit{ch: req.done}
}

// barrier blocks until every append submitted before it is flushed.
func (l *Log) barrier() error {
	if l.closed.Load() {
		return ErrClosed
	}
	req := &appendReq{barrier: true, done: make(chan error, 1)}
	l.reqs <- req
	return <-req.done
}

// ShouldCheckpoint reports whether the snapshot policy asks for a
// checkpoint now.
func (l *Log) ShouldCheckpoint() bool {
	return l.opt.SnapshotEvery > 0 && l.sinceSnap.Load() >= uint64(l.opt.SnapshotEvery)
}

// Close flushes whatever has been submitted and releases the log file.
// It must not race Append or Checkpoint.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	close(l.stopc)
	<-l.done
	return l.f.Close()
}

// flusher is the single goroutine that owns log-file writes.
func (l *Log) flusher() {
	defer close(l.done)
	for {
		select {
		case <-l.stopc:
			l.drainRemaining()
			return
		case r := <-l.reqs:
			if r.barrier {
				r.done <- nil
				continue
			}
			l.collectAndFlush(r)
		}
	}
}

// collectAndFlush gathers a batch starting at first and writes it as
// one record. It flushes as soon as every submitted append is in hand;
// with MaxWait > 0 it lingers for stragglers known to be in flight.
func (l *Log) collectAndFlush(first *appendReq) {
	batch := []*appendReq{first}
	var barriers []*appendReq
	var timer *time.Timer
collect:
	for len(batch) < l.opt.BatchSize {
		select {
		case r := <-l.reqs:
			if r.barrier {
				barriers = append(barriers, r)
				break collect
			}
			batch = append(batch, r)
			continue
		default:
		}
		if l.pending.Load() <= int64(len(batch)) {
			break // everything in flight is already in the batch
		}
		if l.opt.MaxWait <= 0 {
			break
		}
		if timer == nil {
			timer = time.NewTimer(l.opt.MaxWait)
			defer timer.Stop()
		}
		select {
		case r := <-l.reqs:
			if r.barrier {
				barriers = append(barriers, r)
				break collect
			}
			batch = append(batch, r)
		case <-timer.C:
			break collect
		case <-l.stopc:
			break collect
		}
	}
	err := l.flush(batch)
	for _, r := range batch {
		r.done <- err
	}
	for _, b := range barriers {
		b.done <- err
	}
}

// drainRemaining empties the queue during Close: one final batch, then
// every straggler is answered.
func (l *Log) drainRemaining() {
	var batch []*appendReq
	for {
		select {
		case r := <-l.reqs:
			if r.barrier {
				r.done <- nil
				continue
			}
			batch = append(batch, r)
		default:
			if len(batch) == 0 {
				return
			}
			err := l.flush(batch)
			for _, r := range batch {
				r.done <- err
			}
			batch = nil
		}
	}
}

// flush writes one group-commit record covering batch and fsyncs it
// (unless NoFsync).
func (l *Log) flush(batch []*appendReq) error {
	if l.testFlushDelay > 0 {
		time.Sleep(l.testFlushDelay)
	}
	payload := binary.AppendUvarint(nil, uint64(len(batch)))
	for _, r := range batch {
		payload = append(payload, r.payload...)
	}
	rec := make([]byte, recordHeader, recordHeader+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	rec = append(rec, payload...)
	_, err := l.f.Write(rec)
	if err == nil && !l.opt.NoFsync {
		err = l.f.Sync()
		l.fsyncs.Add(1)
	}
	now := time.Now()
	for _, r := range batch {
		l.commitWaitNs.Add(uint64(now.Sub(r.submitted)))
	}
	l.appends.Add(uint64(len(batch)))
	l.batches.Add(1)
	l.bytesAppended.Add(uint64(len(rec)))
	for {
		cur := l.batchMax.Load()
		if uint64(len(batch)) <= cur || l.batchMax.CompareAndSwap(cur, uint64(len(batch))) {
			break
		}
	}
	l.pending.Add(-int64(len(batch)))
	return err
}

// appendString writes a uvarint length-prefixed string (the same shape
// sql's codec uses for strings, kept local to pin the WAL format).
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeString reads a uvarint length-prefixed string.
func decodeString(b []byte) (string, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", 0, errors.New("wal: truncated string")
	}
	return string(b[sz : sz+int(n)]), sz + int(n), nil
}
