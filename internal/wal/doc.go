// Package wal gives a shard durable storage: a write-ahead log with
// group-commit batching plus periodic snapshots of the shard's tables,
// so a questshardd process killed at any point restarts from its
// -wal-dir with a prefix of its history ending on a group-commit
// boundary and rejoins its replica group without duplicate applies.
//
// # On-disk layout
//
// A WAL directory holds exactly two files:
//
//	wal.log   — append-only sequence of group-commit records
//	snapshot  — the most recent checkpoint (atomically replaced)
//
// plus a transient snapshot.tmp while a checkpoint is being written
// (ignored and removed on open).
//
// # WAL record format
//
// One record is one group-commit batch. The whole batch shares a single
// length prefix and CRC, so a torn write of the final record can only
// ever lose the batch as a unit — recovery lands on a group-commit
// boundary by construction:
//
//	uint32 BE  payload length
//	uint32 BE  CRC-32C (Castagnoli) of payload
//	payload:
//	    uvarint opCount
//	    opCount × op:
//	        uvarint seq          — replication sequence (replState.lastSeq)
//	        uvarint len + bytes  — table name
//	        sql row codec        — the inserted row (sql.AppendRow)
//
// Sequences are strictly increasing across the log (after skipping ops
// already covered by the snapshot); a regression mid-log is corruption.
//
// # Snapshot format
//
//	8 bytes    magic "QSTWSNP1"
//	uint32 BE  body length
//	uint32 BE  CRC-32C of body
//	body:
//	    uvarint seq          — every op ≤ seq is reflected in the tables
//	    uvarint tableCount
//	    tableCount × table:
//	        uvarint len + bytes  — table name
//	        uvarint rowCount
//	        rowCount × sql row codec
//
// Checkpoint writes the body to snapshot.tmp, fsyncs (when enabled),
// renames over snapshot, then truncates wal.log. A crash between the
// rename and the truncate is benign: replay skips log ops with
// seq ≤ snapshot seq.
//
// # Group commit
//
// Append never writes directly; it hands the encoded op to a single
// flusher goroutine and returns a Commit handle. The flusher batches
// everything submitted while it was busy, up to Options.BatchSize ops,
// optionally lingering Options.MaxWait for stragglers when more appends
// are known to be in flight, then writes one record and issues one
// fsync for the whole batch. Commit.Wait returns once the op's batch is
// durable, so callers ack only durable writes while concurrent writers
// share fsyncs.
//
// # Recovery and rejoin
//
// Open replays the directory into a database:
//
//  1. Load snapshot (if present) into a fresh Database; corruption is a
//     typed error (errors.Is(err, ErrCorrupt)).
//  2. Scan wal.log record by record. Incomplete trailing bytes — a torn
//     final record — end the scan cleanly and are truncated away. A
//     complete record with a CRC mismatch, an impossible length, a
//     malformed payload, or a sequence regression fails recovery with
//     ErrCorrupt: mid-log damage is never silently skipped.
//  3. Apply each op with seq above the snapshot's, tracking the highest
//     sequence seen.
//
// The recovered sequence seeds the server's replication state
// (Server.AttachWAL), so when the replica rejoins its fleet the
// coordinator replays only ops after it from the primary's op log —
// ops the replica already holds are acked idempotently, never
// re-applied. A replica whose recovered sequence runs past the
// primary's history has diverged and stays fenced out of rotation.
//
// An Open of an empty directory writes an initial snapshot of the base
// database immediately, making the directory self-contained: later
// recoveries need only the directory, not the original data load.
package wal
