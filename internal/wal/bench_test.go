package wal

import (
	"sync"
	"testing"
	"time"
)

// BenchmarkComponent_WALGroupCommit measures the durable append path
// with pipelined writers sharing fsyncs (bench-smoke keeps it alive).
func BenchmarkComponent_WALGroupCommit(b *testing.B) {
	l, _, err := Open(b.TempDir(), walBase(b, 0), Options{BatchSize: 64, MaxWait: 200 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const window = 8
	var mu sync.Mutex
	var seq uint64
	b.ResetTimer()
	for n := 0; n < b.N; n += window {
		var commits []*Commit
		for w := 0; w < window && n+w < b.N; w++ {
			mu.Lock()
			seq++
			commits = append(commits, l.Append(seq, "movie", opRow(seq)))
			mu.Unlock()
		}
		for _, c := range commits {
			if err := c.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	st := l.Stats()
	b.ReportMetric(float64(st.Appends)/float64(max(st.Batches, 1)), "ops/batch")
}

// BenchmarkComponent_WALRecovery measures cold recovery of a populated
// directory (snapshot + log tail).
func BenchmarkComponent_WALRecovery(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(dir, walBase(b, 100), Options{NoFsync: true})
	if err != nil {
		b.Fatal(err)
	}
	for seq := uint64(1); seq <= 500; seq++ {
		l.db.Insert("movie", opRow(seq))
		if err := l.Append(seq, "movie", opRow(seq)).Wait(); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, rec, err := Open(dir, emptyBase(b), Options{NoFsync: true})
		if err != nil {
			b.Fatal(err)
		}
		if rec.LastSeq != 500 {
			b.Fatalf("recovered seq %d", rec.LastSeq)
		}
		l2.Close()
	}
}
