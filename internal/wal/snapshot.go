package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
)

// snapMagic identifies a snapshot file (format v1).
const snapMagic = "QSTWSNP1"

// Checkpoint flushes every submitted append, writes a snapshot of the
// database, and truncates the log. The caller must hold the shard's
// write serialization (transport.Server runs it under replMu), so no
// Append or table mutation races the table scan. On failure the log is
// kept intact — durability is unaffected, the log just keeps growing.
func (l *Log) Checkpoint() error {
	if l.closed.Load() {
		return ErrClosed
	}
	start := time.Now()
	err := l.checkpoint()
	if err != nil {
		l.snapFailures.Add(1)
		return err
	}
	l.snapshots.Add(1)
	l.snapshotNs.Add(uint64(time.Since(start)))
	l.sinceSnap.Store(0)
	return nil
}

func (l *Log) checkpoint() error {
	// Barrier first: every acked append must be in the log before we
	// declare the snapshot covers lastSeq (it flushes them, and a flush
	// error aborts the checkpoint).
	if err := l.barrier(); err != nil {
		return fmt.Errorf("wal: checkpoint barrier: %w", err)
	}
	if err := writeSnapshot(l.dir, l.db, l.lastSeq.Load(), !l.opt.NoFsync); err != nil {
		return err
	}
	// The snapshot now covers everything in the log; drop it. A crash
	// before the truncate is benign (replay skips ops ≤ snapshot seq).
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate log: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: rewind log: %w", err)
	}
	return nil
}

// writeSnapshot serializes db at seq into dir/snapshot via an atomic
// tmp-file rename.
func writeSnapshot(dir string, db *relational.Database, seq uint64, fsync bool) error {
	body := binary.AppendUvarint(nil, seq)
	tables := db.Schema.Tables()
	body = binary.AppendUvarint(body, uint64(len(tables)))
	for _, ts := range tables {
		t := db.Table(ts.Name)
		body = appendString(body, ts.Name)
		body = binary.AppendUvarint(body, uint64(t.Len()))
		for _, r := range t.Rows() {
			body = sql.AppendRow(body, r)
		}
	}
	buf := make([]byte, 0, len(snapMagic)+8+len(body))
	buf = append(buf, snapMagic...)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	buf = append(buf, hdr[:]...)
	buf = append(buf, body...)

	tmp := filepath.Join(dir, snapshotTmp)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot tmp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("wal: snapshot fsync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if fsync {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

// loadSnapshot rebuilds a database (named name, shaped by schema) from
// dir/snapshot. It returns the covered sequence. Damage of any kind is
// ErrCorrupt: a snapshot is written atomically, so unlike the log tail
// there is no benign torn state to tolerate.
func loadSnapshot(path, name string, schema *relational.Schema) (*relational.Database, uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < len(snapMagic)+8 || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, 0, corruptf(0, "snapshot: bad magic or truncated header")
	}
	n := binary.BigEndian.Uint32(raw[len(snapMagic) : len(snapMagic)+4])
	crc := binary.BigEndian.Uint32(raw[len(snapMagic)+4 : len(snapMagic)+8])
	body := raw[len(snapMagic)+8:]
	if uint32(len(body)) != n {
		return nil, 0, corruptf(0, "snapshot: body length %d, header says %d", len(body), n)
	}
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, 0, corruptf(0, "snapshot: CRC mismatch")
	}
	db, err := relational.NewDatabase(name, schema)
	if err != nil {
		return nil, 0, err
	}
	seq, sz := binary.Uvarint(body)
	if sz <= 0 {
		return nil, 0, corruptf(0, "snapshot: bad sequence")
	}
	off := sz
	tableCount, sz := binary.Uvarint(body[off:])
	if sz <= 0 {
		return nil, 0, corruptf(0, "snapshot: bad table count")
	}
	off += sz
	for i := uint64(0); i < tableCount; i++ {
		tname, sz, err := decodeString(body[off:])
		if err != nil {
			return nil, 0, corruptf(int64(off), "snapshot: table name: %v", err)
		}
		off += sz
		rows, sz2 := binary.Uvarint(body[off:])
		if sz2 <= 0 {
			return nil, 0, corruptf(int64(off), "snapshot: row count for %s", tname)
		}
		off += sz2
		t := db.Table(tname)
		if t == nil {
			return nil, 0, corruptf(int64(off), "snapshot: unknown table %s", tname)
		}
		for j := uint64(0); j < rows; j++ {
			row, sz3, err := sql.DecodeRow(body[off:])
			if err != nil {
				return nil, 0, corruptf(int64(off), "snapshot: %s row %d: %v", tname, j, err)
			}
			off += sz3
			if err := t.Insert(row); err != nil {
				return nil, 0, corruptf(int64(off), "snapshot: %s row %d: %v", tname, j, err)
			}
		}
	}
	if off != len(body) {
		return nil, 0, corruptf(int64(off), "snapshot: %d trailing bytes", len(body)-off)
	}
	return db, seq, nil
}
