package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/relational"
)

// walSchema builds the two-table schema the tests log against.
func walSchema(t testing.TB) *relational.Schema {
	t.Helper()
	s := relational.NewSchema()
	add := func(ts *relational.TableSchema) {
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	add(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString, NotNull: true},
			{Name: "year", Type: relational.TypeInt},
		},
		PrimaryKey: "movie_id",
	})
	add(&relational.TableSchema{
		Name: "tagline",
		Columns: []relational.Column{
			{Name: "tag_id", Type: relational.TypeInt, NotNull: true},
			{Name: "text", Type: relational.TypeString},
		},
		PrimaryKey: "tag_id",
	})
	return s
}

// walBase builds a base database with nBase pre-loaded movies.
func walBase(t testing.TB, nBase int) *relational.Database {
	t.Helper()
	db, err := relational.NewDatabase("waltest", walSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nBase; i++ {
		if err := db.Insert("movie", baseRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func baseRow(i int) relational.Row {
	return relational.Row{relational.Int(int64(i)), relational.String_(fmt.Sprintf("base %d", i)), relational.Int(1990)}
}

// opRow is the row appended at sequence seq (PKs offset past the base).
func opRow(seq uint64) relational.Row {
	return relational.Row{relational.Int(int64(1000 + seq)), relational.String_(fmt.Sprintf("op %d", seq)), relational.Int(2000)}
}

// emptyBase returns a fresh schema-only database, the shape a restart
// passes to Open once the directory is self-contained.
func emptyBase(t testing.TB) *relational.Database {
	t.Helper()
	db, err := relational.NewDatabase("waltest", walSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// appendOps appends seqs (first..first+n-1) one by one, waiting each.
func appendOps(t testing.TB, l *Log, first uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := first + uint64(i)
		if err := l.db.Insert("movie", opRow(seq)); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(seq, "movie", opRow(seq)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTripThroughRestart(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, walBase(t, 5), Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.FromSnapshot || rec.LastSeq != 0 || rec.ReplayedOps != 0 {
		t.Fatalf("fresh open recovery = %+v", rec)
	}
	// The first open must have made the directory self-contained.
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("no base snapshot after first open: %v", err)
	}
	appendOps(t, l, 1, 7)
	if got := l.LastSeq(); got != 7 {
		t.Fatalf("LastSeq = %d, want 7", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with only the schema: snapshot restores the base, replay
	// restores the appends.
	l2, rec2, err := Open(dir, emptyBase(t), Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !rec2.FromSnapshot {
		t.Fatal("restart did not load the snapshot")
	}
	if rec2.LastSeq != 7 || rec2.ReplayedOps != 7 {
		t.Fatalf("recovery = %+v, want LastSeq 7 ReplayedOps 7", rec2)
	}
	if n := rec2.DB.Table("movie").Len(); n != 12 {
		t.Fatalf("recovered movie rows = %d, want 12", n)
	}
	st := l2.Stats()
	if st.RecoveredSeq != 7 || st.RecoveryReplayedOps != 7 || st.RecoveryNs == 0 {
		t.Fatalf("recovery stats = %+v", st)
	}
	// Appends resume past the recovered sequence.
	appendOps(t, l2, 8, 2)
	if got := l2.LastSeq(); got != 9 {
		t.Fatalf("LastSeq after resume = %d, want 9", got)
	}
}

func TestGroupCommitBatchesConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, walBase(t, 0), Options{BatchSize: 16, MaxWait: 10 * time.Millisecond, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Stand in for fsync latency: while one batch "syncs", concurrent
	// writers pile up and the next flush covers all of them.
	l.testFlushDelay = 2 * time.Millisecond
	// Mimic the server: sequence assignment + submit under one lock
	// (replMu), durability wait outside it, many writers at once.
	const writers, perWriter = 8, 20
	var mu sync.Mutex
	var seq uint64
	var wg sync.WaitGroup
	errc := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				mu.Lock()
				seq++
				s := seq
				l.db.Insert("movie", opRow(s))
				c := l.Append(s, "movie", opRow(s))
				mu.Unlock()
				errc <- c.Wait()
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Batches >= st.Appends {
		t.Fatalf("no group commit: %d batches for %d appends", st.Batches, st.Appends)
	}
	if st.BatchMax < 2 || st.BatchMax > 16 {
		t.Fatalf("BatchMax = %d, want within [2,16]", st.BatchMax)
	}
	if st.Fsyncs != 0 {
		t.Fatalf("Fsyncs = %d with NoFsync", st.Fsyncs)
	}
	if st.CommitWaitNs == 0 || st.BytesAppended == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Multi-op records replay exactly.
	l2, rec, err := Open(dir, emptyBase(t), Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.LastSeq != writers*perWriter || rec.ReplayedOps != writers*perWriter {
		t.Fatalf("recovery = %+v", rec)
	}
	if n := rec.DB.Table("movie").Len(); n != writers*perWriter {
		t.Fatalf("recovered rows = %d", n)
	}
}

func TestFsyncPerBatch(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, walBase(t, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendOps(t, l, 1, 3)
	st := l.Stats()
	if st.Fsyncs != st.Batches || st.Fsyncs == 0 {
		t.Fatalf("Fsyncs = %d, Batches = %d; want one fsync per batch", st.Fsyncs, st.Batches)
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, walBase(t, 3), Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, 1, 10)
	logPath := filepath.Join(dir, logFile)
	if fi, _ := os.Stat(logPath); fi.Size() == 0 {
		t.Fatal("log empty before checkpoint")
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(logPath); fi.Size() != 0 {
		t.Fatalf("log size %d after checkpoint, want 0", fi.Size())
	}
	if st := l.Stats(); st.Snapshots != 2 || st.SnapshotNs == 0 { // open-time + explicit
		t.Fatalf("snapshot stats = %+v", st)
	}
	if got := l.SinceCheckpoint(); got != 0 {
		t.Fatalf("SinceCheckpoint = %d", got)
	}
	// Ops after the checkpoint land at the head of the truncated log.
	appendOps(t, l, 11, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, emptyBase(t), Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.LastSeq != 14 || rec.ReplayedOps != 4 {
		t.Fatalf("recovery = %+v, want LastSeq 14 ReplayedOps 4", rec)
	}
	if n := rec.DB.Table("movie").Len(); n != 17 {
		t.Fatalf("recovered rows = %d, want 17", n)
	}
}

func TestSnapshotPolicy(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, walBase(t, 0), Options{NoFsync: true, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.ShouldCheckpoint() {
		t.Fatal("ShouldCheckpoint before any append")
	}
	appendOps(t, l, 1, 4)
	if !l.ShouldCheckpoint() {
		t.Fatal("ShouldCheckpoint false after SnapshotEvery appends")
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if l.ShouldCheckpoint() {
		t.Fatal("ShouldCheckpoint true right after a checkpoint")
	}
	// Replayed-but-unsnapshotted ops count toward the policy after a
	// restart.
	appendOps(t, l, 5, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, err := Open(dir, emptyBase(t), Options{NoFsync: true, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.SinceCheckpoint(); got != 3 {
		t.Fatalf("SinceCheckpoint after restart = %d, want 3", got)
	}
}

func TestClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, walBase(t, 0), Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendOps(t, l, 1, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := l.Append(3, "movie", opRow(3)).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
	if err := l.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after close = %v, want ErrClosed", err)
	}
}

func TestBarrierFlushesPending(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, walBase(t, 0), Options{BatchSize: 64, MaxWait: time.Second, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Submit without waiting, then checkpoint: the barrier must flush
	// the stragglers before the snapshot claims to cover them.
	var commits []*Commit
	for seq := uint64(1); seq <= 5; seq++ {
		l.db.Insert("movie", opRow(seq))
		commits = append(commits, l.Append(seq, "movie", opRow(seq)))
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, c := range commits {
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Appends != 5 {
		t.Fatalf("Appends = %d", st.Appends)
	}
}
