package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
)

// ErrCorrupt marks unrecoverable damage: a mid-log CRC mismatch, an
// impossible record length, a malformed payload, a sequence regression,
// or a damaged snapshot. Wrapped errors answer
// errors.Is(err, ErrCorrupt). A torn final record (incomplete trailing
// bytes) is NOT corruption — recovery truncates it and continues.
var ErrCorrupt = errors.New("wal: corrupt")

// CorruptError carries the byte offset and detail of detected damage.
type CorruptError struct {
	Offset int64
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt at offset %d: %s", e.Offset, e.Detail)
}

// Unwrap makes errors.Is(err, ErrCorrupt) hold.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

func corruptf(off int64, format string, args ...any) error {
	return &CorruptError{Offset: off, Detail: fmt.Sprintf(format, args...)}
}

// Recovery reports what Open reconstructed.
type Recovery struct {
	// DB is the recovered database: snapshot (or base) plus log tail.
	DB *relational.Database
	// LastSeq is the highest replication sequence recovered; the server
	// resumes from it (Server.AttachWAL).
	LastSeq uint64
	// ReplayedOps counts ops applied from the log tail.
	ReplayedOps int
	// FromSnapshot reports whether a snapshot file was loaded (false
	// only for a brand-new directory, which starts from base).
	FromSnapshot bool
	// TornBytes counts trailing bytes truncated from a torn final
	// record (0 for a cleanly closed log).
	TornBytes int64
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// Open recovers the WAL directory and returns a running Log over the
// recovered database. base supplies the database for a brand-new
// directory (an initial snapshot of it is written immediately, making
// the directory self-contained); on later opens only base.Name and
// base.Schema are used, so passing a fresh empty database is fine.
func Open(dir string, base *relational.Database, opt Options) (*Log, *Recovery, error) {
	if base == nil {
		return nil, nil, errors.New("wal: nil base database")
	}
	opt = opt.withDefaults()
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	// A leftover tmp is an unfinished checkpoint; the real snapshot (if
	// any) is still authoritative.
	os.Remove(filepath.Join(dir, snapshotTmp))

	rec := &Recovery{}
	db := base
	var snapSeq uint64
	snapPath := filepath.Join(dir, snapshotFile)
	if _, err := os.Stat(snapPath); err == nil {
		db, snapSeq, err = loadSnapshot(snapPath, base.Name, base.Schema)
		if err != nil {
			return nil, nil, err
		}
		rec.FromSnapshot = true
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}

	f, err := os.OpenFile(filepath.Join(dir, logFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	lastSeq, replayed, validEnd, torn, err := replayLog(f, db, snapSeq, opt.MaxRecord)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if torn > 0 {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}

	l := &Log{
		dir:   dir,
		opt:   opt,
		db:    db,
		f:     f,
		reqs:  make(chan *appendReq, 4*opt.BatchSize),
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	l.lastSeq.Store(lastSeq)

	// First open of an empty directory: persist the base immediately so
	// the directory alone reproduces the shard from now on.
	if !rec.FromSnapshot && validEnd == 0 {
		if err := writeSnapshot(dir, db, lastSeq, !opt.NoFsync); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.snapshots.Add(1)
	} else {
		// Replayed log ops count toward the snapshot policy.
		l.sinceSnap.Store(uint64(replayed))
	}

	rec.DB = db
	rec.LastSeq = lastSeq
	rec.ReplayedOps = replayed
	rec.TornBytes = torn
	rec.Elapsed = time.Since(start)
	l.recoveredSeq = lastSeq
	l.recoveredOps = uint64(replayed)
	l.recoveryNs = uint64(rec.Elapsed)

	go l.flusher()
	return l, rec, nil
}

// replayLog scans the log from the start, applying every op with
// seq > snapSeq to db. It returns the highest sequence seen (at least
// snapSeq), the number of ops applied, the offset of the last complete
// record (the valid prefix), and how many torn trailing bytes follow
// it. Damage before the final record — or any complete-but-invalid
// record — is ErrCorrupt.
func replayLog(f *os.File, db *relational.Database, snapSeq uint64, maxRecord int) (lastSeq uint64, replayed int, validEnd int64, torn int64, err error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	lastSeq = snapSeq
	var off int64
	var hdr [recordHeader]byte
	for {
		n, rerr := io.ReadFull(br, hdr[:])
		if rerr == io.EOF && n == 0 {
			break // clean end of log
		}
		if rerr == io.ErrUnexpectedEOF {
			return lastSeq, replayed, off, size - off, nil // torn header
		}
		if rerr != nil {
			return 0, 0, 0, 0, fmt.Errorf("wal: read log: %w", rerr)
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		crc := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || length > uint32(maxRecord) {
			return 0, 0, 0, 0, corruptf(off, "impossible record length %d", length)
		}
		payload := make([]byte, length)
		if _, rerr := io.ReadFull(br, payload); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return lastSeq, replayed, off, size - off, nil // torn payload
			}
			return 0, 0, 0, 0, fmt.Errorf("wal: read log: %w", rerr)
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return 0, 0, 0, 0, corruptf(off, "record CRC mismatch")
		}
		applied, aerr := applyRecord(payload, db, snapSeq, &lastSeq, off)
		if aerr != nil {
			return 0, 0, 0, 0, aerr
		}
		replayed += applied
		off += recordHeader + int64(length)
	}
	return lastSeq, replayed, off, 0, nil
}

// applyRecord decodes one group-commit payload and applies its ops.
func applyRecord(payload []byte, db *relational.Database, snapSeq uint64, lastSeq *uint64, recOff int64) (int, error) {
	opCount, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return 0, corruptf(recOff, "bad op count")
	}
	off := sz
	applied := 0
	for i := uint64(0); i < opCount; i++ {
		seq, sz := binary.Uvarint(payload[off:])
		if sz <= 0 {
			return 0, corruptf(recOff, "op %d: bad sequence", i)
		}
		off += sz
		table, sz, err := decodeString(payload[off:])
		if err != nil {
			return 0, corruptf(recOff, "op %d: %v", i, err)
		}
		off += sz
		row, sz, err := sql.DecodeRow(payload[off:])
		if err != nil {
			return 0, corruptf(recOff, "op %d (%s): %v", i, table, err)
		}
		off += sz
		if seq <= snapSeq {
			continue // already covered by the snapshot
		}
		if seq <= *lastSeq {
			return 0, corruptf(recOff, "op %d: sequence %d regresses below %d", i, seq, *lastSeq)
		}
		if err := db.Insert(table, row); err != nil {
			return 0, corruptf(recOff, "op %d: replay seq %d into %s: %v", i, seq, table, err)
		}
		*lastSeq = seq
		applied++
	}
	if off != len(payload) {
		return 0, corruptf(recOff, "%d trailing payload bytes", len(payload)-off)
	}
	return applied, nil
}
