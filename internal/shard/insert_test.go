package shard

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/transport"
	"repro/internal/wrapper"
)

// writeBackend is a stub backend that records inserts.
type writeBackend struct {
	stubBackend
	rows map[string][]relational.Row
}

func (b *writeBackend) Insert(table string, row relational.Row) error {
	if b.rows == nil {
		b.rows = map[string][]relational.Row{}
	}
	b.rows[table] = append(b.rows[table], row)
	return nil
}

// TestInsertReadOnlyTopology pins the typed error: a source over injected
// backends without a write surface rejects Insert with
// ErrReadOnlyTopology, identifiable with errors.Is, and the message names
// the source.
func TestInsertReadOnlyTopology(t *testing.T) {
	db := testDB(t, 4, 4, 4)
	ro := &stubBackend{exists: func(*sql.SelectStmt) (bool, error) { return false, nil }}
	src := NewFromBackends("frozen", db.Schema, []Backend{ro, ro}, Options{Workers: 1})
	err := src.Insert("movie", relational.Row{
		relational.Int(99), relational.String_("x"), relational.Int(2000), relational.Null(),
	})
	if !errors.Is(err, ErrReadOnlyTopology) {
		t.Fatalf("Insert over read-only backends = %v, want ErrReadOnlyTopology", err)
	}
	if !strings.Contains(err.Error(), "frozen") || !strings.Contains(err.Error(), "read-only") {
		t.Errorf("error message %q should name the source and say read-only", err)
	}
}

// TestInsertReadOnlyTopologyRemoteV1 pins the remote flavor: transport
// clients whose connections negotiated protocol v1 cannot carry
// replication frames, and the sharded source surfaces that as the same
// ErrReadOnlyTopology rather than a bare transport error.
func TestInsertReadOnlyTopologyRemoteV1(t *testing.T) {
	db := testDB(t, 8, 4, 8)
	parts, err := Partition(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]Backend, len(parts))
	for i, p := range parts {
		srv := transport.NewServer(wrapper.NewFullAccessSource(p))
		cl, err := transport.NewReplicatedClient(
			[]transport.ReplicaSpec{{Name: "r0", Dial: transport.LoopbackDialer(srv)}},
			transport.Options{Protocol: transport.ProtocolV1, MaxAttempts: 2, RetryBackoff: 1},
		)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		backends[i] = cl
	}
	src := NewFromBackends(db.Name, db.Schema, backends, Options{AssumeHashRouting: true, Workers: 2})
	err = src.Insert("movie", relational.Row{
		relational.Int(999), relational.String_("late arrival"), relational.Int(2013), relational.Null(),
	})
	if !errors.Is(err, ErrReadOnlyTopology) {
		t.Fatalf("Insert over v1 connections = %v, want ErrReadOnlyTopology", err)
	}
	// Reads must be unaffected by the failed write.
	res, err := src.Execute(mustParse(t, "SELECT movie_id FROM movie"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("read after rejected write: %d rows, want 8", len(res.Rows))
	}
}

// TestInsertRoutesThroughInjectedBackends verifies the write-through
// path: PK rows land on the hash-routed shard (matching Partition), and
// keyless rows round-robin off the coordinator-local ordinal.
func TestInsertRoutesThroughInjectedBackends(t *testing.T) {
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name: "m",
		Columns: []relational.Column{
			{Name: "id", Type: relational.TypeInt, NotNull: true},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(&relational.TableSchema{
		Name: "log",
		Columns: []relational.Column{
			{Name: "msg", Type: relational.TypeString},
		},
	}); err != nil {
		t.Fatal(err)
	}
	n := 3
	backends := make([]Backend, n)
	recs := make([]*writeBackend, n)
	for i := range backends {
		recs[i] = &writeBackend{}
		backends[i] = recs[i]
	}
	src := NewFromBackends("routed", s, backends, Options{Workers: 1})

	ts := s.Table("m")
	for id := int64(1); id <= 20; id++ {
		row := relational.Row{relational.Int(id)}
		want := routeFor(ts, row, 0, n)
		if err := src.Insert("m", row); err != nil {
			t.Fatal(err)
		}
		got := -1
		for i, r := range recs {
			if len(r.rows["m"]) > 0 && r.rows["m"][len(r.rows["m"])-1][0].Key() == row[0].Key() {
				got = i
			}
		}
		if got != want {
			t.Fatalf("pk row %d routed to shard %d, want %d", id, got, want)
		}
	}
	for i := 0; i < 2*n; i++ {
		if err := src.Insert("log", relational.Row{relational.String_("x")}); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range recs {
		if len(r.rows["log"]) != 2 {
			t.Fatalf("keyless rows unbalanced: shard %d got %d of 6", i, len(r.rows["log"]))
		}
	}
	if err := src.Insert("nope", relational.Row{}); err == nil {
		t.Fatal("unknown table accepted")
	}
}

// TestInsertRemoteWriteThrough is the end-to-end regression: a row
// inserted through a remote sharded source (replicated clients over
// loopback servers) is immediately visible to queries, on the shard the
// partitioning would have chosen.
func TestInsertRemoteWriteThrough(t *testing.T) {
	db := testDB(t, 10, 6, 12)
	parts, err := Partition(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*transport.Server, len(parts))
	backends := make([]Backend, len(parts))
	for i, p := range parts {
		servers[i] = transport.NewServer(wrapper.NewFullAccessSource(p))
		cl, err := transport.NewReplicatedClient(
			[]transport.ReplicaSpec{{Name: "r0", Dial: transport.LoopbackDialer(servers[i])}},
			transport.Options{},
		)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		backends[i] = cl
	}
	src := NewFromBackends(db.Name, db.Schema, backends, Options{AssumeHashRouting: true, Workers: 2})
	row := relational.Row{
		relational.Int(4242), relational.String_("storm river"), relational.Int(2013), relational.String_("drama"),
	}
	if err := src.Insert("movie", row); err != nil {
		t.Fatal(err)
	}
	for _, srv := range servers {
		srv.Quiesce()
	}
	res, err := src.Execute(mustParse(t, "SELECT title FROM movie WHERE movie_id = 4242"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Key() != relational.String_("storm river").Key() {
		t.Fatalf("inserted row not visible: %v", res.Rows)
	}
	// The row must sit on the shard Partition would have chosen — pruning
	// correctness depends on it.
	want := routeFor(db.Schema.Table("movie"), row, 0, len(parts))
	found, err := backends[want].ExecuteExists(mustParse(t, "SELECT title FROM movie WHERE movie_id = 4242"))
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("row not on hash-routed shard %d", want)
	}
}
