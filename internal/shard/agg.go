package shard

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"repro/internal/relational"
	"repro/internal/sql"
)

// Partial aggregate pushdown: single-table aggregate statements decompose
// into per-shard partial aggregates merged at the coordinator, so
// `SELECT genre, COUNT(*) FROM movie GROUP BY genre` ships one row per
// (shard, group) instead of every qualifying base row. The decompositions
// are the textbook ones — COUNT sums partial counts, SUM sums partial
// sums, MIN/MAX fold partial extrema, AVG travels as (SUM, COUNT) and
// divides at the coordinator — and each merge is bit-identical to
// single-node evaluation over the union of the partitions, which the
// conformance harness's byte-level comparison demands. That exactness
// requirement is why SUM and AVG only decompose for non-float arguments:
// float addition is not associative, so re-ordering a float sum across
// shards could diverge from the reference in the last ulp, and integer
// sums are order-independent exactly as far as the reference's own
// float64 accumulator is exact (totals within ±2^53 — beyond that the
// engine's single-node answer is itself rounded, and this path shares
// its accumulator width, not its accumulation order). Float SUM/AVG
// statements take the gather path instead.
//
// Statements with joins, HAVING, DISTINCT, aggregate-bearing expressions
// (COUNT(*)+1), or ORDER BY keys that are not projected outputs also fall
// back to the gather path, whose coordinator finish already has reference
// semantics for all of them.

// aggItem maps one output column to its merge rule.
type aggItem struct {
	// groupIdx >= 0 selects group-key column groupIdx; the aggregate
	// fields below are then unused.
	groupIdx int
	fn       sql.AggFunc
	// slot is the partial column's ordinal in the per-shard result row;
	// slot2 is the companion COUNT partial for AVG (-1 otherwise).
	slot, slot2 int
}

// aggPlan is a decomposed aggregate statement: the per-shard partial
// statement plus the coordinator's merge recipe.
type aggPlan struct {
	shardStmt *sql.SelectStmt
	items     []aggItem
	nGroup    int
	// orderCols[i] is the output-column ordinal ORDER BY key i sorts on.
	orderCols []int
}

// exprKey canonicalizes an expression for structural matching.
func exprKey(e sql.Expr) string { return strings.ToLower(e.SQL()) }

// planAggPushdown reports whether the statement decomposes into exact
// per-shard partial aggregates, and builds the plan when it does.
func planAggPushdown(schema *relational.Schema, stmt *sql.SelectStmt) (*aggPlan, bool) {
	if len(stmt.Joins) > 0 || stmt.Having != nil || stmt.Distinct || len(stmt.Items) == 0 {
		return nil, false
	}
	hasAgg := false
	for _, it := range stmt.Items {
		if it.Star {
			return nil, false
		}
		if sql.ContainsAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg && len(stmt.GroupBy) == 0 {
		return nil, false // not an aggregate statement
	}
	ts := schema.Table(stmt.From.Table)
	if ts == nil {
		return nil, false
	}
	for _, g := range stmt.GroupBy {
		if sql.ContainsAggregate(g) {
			return nil, false
		}
	}

	plan := &aggPlan{nGroup: len(stmt.GroupBy)}
	shardItems := make([]sql.SelectItem, 0, len(stmt.GroupBy)+len(stmt.Items))
	for gi, g := range stmt.GroupBy {
		shardItems = append(shardItems, sql.SelectItem{Expr: g, Alias: fmt.Sprintf("__g%d", gi)})
	}
	nextSlot := len(stmt.GroupBy)
	addPartial := func(e sql.Expr) int {
		shardItems = append(shardItems, sql.SelectItem{
			Expr: e, Alias: fmt.Sprintf("__a%d", nextSlot),
		})
		nextSlot++
		return nextSlot - 1
	}

	for _, it := range stmt.Items {
		if !sql.ContainsAggregate(it.Expr) {
			// Plain output column: must be one of the group keys. (The
			// reference interpreter would evaluate a non-grouped column on
			// each group's first row — an order-dependent answer no
			// partitioned execution can reproduce, so it stays on the
			// gather path.)
			gi := -1
			for i, g := range stmt.GroupBy {
				if exprKey(g) == exprKey(it.Expr) {
					gi = i
					break
				}
			}
			if gi < 0 {
				return nil, false
			}
			plan.items = append(plan.items, aggItem{groupIdx: gi})
			continue
		}
		agg, ok := it.Expr.(*sql.AggExpr)
		if !ok {
			return nil, false // aggregate inside a larger expression
		}
		item := aggItem{groupIdx: -1, fn: agg.Func, slot2: -1}
		switch agg.Func {
		case sql.AggCount, sql.AggMin, sql.AggMax:
			item.slot = addPartial(agg)
		case sql.AggSum, sql.AggAvg:
			if !exactSumArg(schema, stmt, ts, agg) {
				return nil, false
			}
			item.slot = addPartial(&sql.AggExpr{Func: sql.AggSum, Arg: agg.Arg})
			if agg.Func == sql.AggAvg {
				item.slot2 = addPartial(&sql.AggExpr{Func: sql.AggCount, Arg: agg.Arg})
			}
		default:
			return nil, false
		}
		plan.items = append(plan.items, item)
	}

	// ORDER BY keys must be projected outputs, matched the way the
	// reference resolves them: structurally first (a group expression or a
	// projected aggregate evaluates to the output column), then — only
	// for identifiers that are NOT base columns — by output alias. The
	// reference tries base-column evaluation before its alias fallback,
	// so an alias shadowing a real column (genre AS year ... ORDER BY
	// year) sorts by the column there; that shape must take the gather
	// path, not silently sort by the alias.
	for _, ob := range stmt.OrderBy {
		ord := -1
		for oi, it := range stmt.Items {
			if exprKey(ob.Expr) == exprKey(it.Expr) {
				ord = oi
				break
			}
		}
		if ord < 0 {
			if cr, ok := ob.Expr.(*sql.ColumnRef); ok && cr.Table == "" && ts.Column(cr.Column) == nil {
				for oi, it := range stmt.Items {
					if it.Alias != "" && strings.EqualFold(cr.Column, it.Alias) {
						ord = oi
						break
					}
				}
			}
		}
		if ord < 0 {
			return nil, false
		}
		plan.orderCols = append(plan.orderCols, ord)
	}

	plan.shardStmt = &sql.SelectStmt{
		Items:   shardItems,
		From:    stmt.From,
		Where:   stmt.Where,
		GroupBy: stmt.GroupBy,
		Limit:   -1,
	}
	return plan, true
}

// exactSumArg reports whether a SUM/AVG argument is safe to decompose: a
// bare column whose type makes the reference's float64 accumulator exact
// and therefore order-independent (integers and everything the engine
// coerces to 0 — only genuine floats can pick up rounding that depends on
// addition order).
func exactSumArg(schema *relational.Schema, stmt *sql.SelectStmt, ts *relational.TableSchema, agg *sql.AggExpr) bool {
	cr, ok := agg.Arg.(*sql.ColumnRef)
	if !ok {
		return false
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, stmt.From.Binding()) {
		return false
	}
	col := ts.Column(cr.Column)
	if col == nil {
		return false
	}
	return col.Type != relational.TypeFloat
}

// aggAcc folds one output aggregate across shard partials.
type aggAcc struct {
	seen  bool
	isInt bool
	sum   float64
	cnt   int64
	mn    relational.Value
	mx    relational.Value
}

// mergeGroup is one output group under construction.
type mergeGroup struct {
	keys relational.Row
	accs []aggAcc
}

// executeAggPushdown runs the decomposed statement: the partial statement
// on every candidate shard in parallel, then the merge, ordering and
// limits at the coordinator.
func (s *ShardedSource) executeAggPushdown(ctx context.Context, stmt *sql.SelectStmt, plan *aggPlan) (*sql.Result, error) {
	s.c.aggPushdown.Add(1)
	frags, err := sql.Fragments(s.schema, stmt)
	if err != nil {
		return nil, err
	}
	shards := s.shardsFor(&frags[0])
	if len(shards) == 0 {
		// Fully pruned (an IN list of NULLs): a global aggregate must still
		// produce its one row — let the gather path synthesize it from the
		// empty row set with reference semantics.
		s.c.aggPushdown.Add(^uint64(0))
		return s.executeGather(ctx, stmt)
	}
	results := make([]*sql.Result, len(s.backends))
	errs := make([]error, len(s.backends))
	s.forEach(len(shards), func(i int) {
		si := shards[i]
		if cerr := ctx.Err(); cerr != nil {
			errs[si] = cerr
			return
		}
		s.c.fragments.Add(1)
		res, ferr := fetchResult(ctx, s.backends[si], plan.shardStmt)
		if ferr != nil {
			errs[si] = ferr
			return
		}
		s.c.rowsShipped.Add(uint64(len(res.Rows)))
		results[si] = res
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	// Merge partial rows by group key, first-appearance order (shard index
	// ascending, then the shard's own row order) so the merge is
	// deterministic. Key components are length-prefixed: Value.Key()
	// carries exactly the reference interpreter's grouping equality (NULLs
	// group together, numerics by magnitude), and the prefix keeps
	// adjacent string keys from bleeding into each other — ("a|b", "c")
	// and ("a", "b|c") must stay distinct groups.
	var order []*mergeGroup
	groups := map[string]*mergeGroup{}
	var kb []byte
	for _, res := range results {
		if res == nil {
			continue
		}
		for _, row := range res.Rows {
			kb = kb[:0]
			for k := 0; k < plan.nGroup; k++ {
				vk := row[k].Key()
				kb = binary.AppendUvarint(kb, uint64(len(vk)))
				kb = append(kb, vk...)
			}
			key := string(kb)
			g := groups[key]
			if g == nil {
				g = &mergeGroup{
					keys: append(relational.Row(nil), row[:plan.nGroup]...),
					accs: make([]aggAcc, len(plan.items)),
				}
				for i := range g.accs {
					g.accs[i].isInt = true
				}
				groups[key] = g
				order = append(order, g)
			}
			for i, it := range plan.items {
				if it.groupIdx >= 0 {
					continue
				}
				g.accs[i].fold(it, row)
			}
		}
	}

	rows := make([]relational.Row, len(order))
	for ri, g := range order {
		row := make(relational.Row, len(plan.items))
		for i, it := range plan.items {
			if it.groupIdx >= 0 {
				row[i] = g.keys[it.groupIdx]
				continue
			}
			row[i] = g.accs[i].final(it.fn)
		}
		rows[ri] = row
	}

	if len(plan.orderCols) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			for k, ord := range plan.orderCols {
				c := relational.Compare(rows[i][ord], rows[j][ord])
				if c == 0 {
					continue
				}
				if stmt.OrderBy[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	rows = trimOffsetLimit(rows, stmt)
	return &sql.Result{Columns: aggColumns(stmt), Rows: rows}, nil
}

// fold accumulates one shard's partial value for one output aggregate.
func (a *aggAcc) fold(it aggItem, row relational.Row) {
	switch it.fn {
	case sql.AggCount:
		a.cnt += row[it.slot].AsInt()
	case sql.AggSum:
		v := row[it.slot]
		if v.IsNull() {
			return
		}
		a.seen = true
		if v.Type() == relational.TypeFloat {
			a.isInt = false
		}
		a.sum += v.AsFloat()
	case sql.AggMin:
		v := row[it.slot]
		if !v.IsNull() && (a.mn.IsNull() || relational.Compare(v, a.mn) < 0) {
			a.mn = v
		}
	case sql.AggMax:
		v := row[it.slot]
		if !v.IsNull() && (a.mx.IsNull() || relational.Compare(v, a.mx) > 0) {
			a.mx = v
		}
	case sql.AggAvg:
		cnt := row[it.slot2]
		if cnt.AsInt() == 0 {
			return
		}
		a.cnt += cnt.AsInt()
		a.sum += row[it.slot].AsFloat()
	}
}

// final renders the merged aggregate with the reference interpreter's
// result typing: COUNT is an integer, SUM keeps integer-ness when every
// input was integral, AVG is always a float, MIN/MAX return the extremum
// value itself (NULL over an empty input).
func (a *aggAcc) final(fn sql.AggFunc) relational.Value {
	switch fn {
	case sql.AggCount:
		return relational.Int(a.cnt)
	case sql.AggSum:
		if !a.seen {
			return relational.Null()
		}
		if a.isInt {
			return relational.Int(int64(a.sum))
		}
		return relational.Float(a.sum)
	case sql.AggMin:
		return a.mn
	case sql.AggMax:
		return a.mx
	case sql.AggAvg:
		if a.cnt == 0 {
			return relational.Null()
		}
		return relational.Float(a.sum / float64(a.cnt))
	}
	return relational.Null()
}

// aggColumns names the output columns with the reference interpreter's
// own rule (sql.ItemColumnName) so results are indistinguishable from
// single-node execution.
func aggColumns(stmt *sql.SelectStmt) []string {
	out := make([]string, len(stmt.Items))
	for i, it := range stmt.Items {
		out[i] = sql.ItemColumnName(it, i)
	}
	return out
}
