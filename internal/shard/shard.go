// Package shard is the sharded multi-backend execution layer: a
// ShardedSource implements the full wrapper source surface over N
// hash-partitioned per-shard backends, so QUEST's engine (and any SQL
// client of the wrapper) runs unchanged against partitioned data.
//
// The division of labor follows the pushdown-fragment contract documented
// in internal/sql (see the package doc there): the coordinator splits each
// statement into per-table fragments carrying the pushed-down single-table
// predicates (sql.Fragments), ships every fragment to the shards that can
// hold qualifying rows — a fragment pinning a primary key to literals is
// routed only to the shards those values hash to — and scatter-gathers the
// filtered rows over a bounded worker pool. Joins, residual predicates,
// projection, aggregation, DISTINCT, ordering and limits then run at the
// coordinator (sql.ExecuteRows) with the reference interpreter's
// semantics, so results are multiset-identical to single-node execution;
// the internal/conformance differential suite holds every backend to that
// contract.
//
// Backends are addressed through one executor interface (Backend) whether
// they live in this process or behind the wire: wrapper.FullAccessSource
// serves the in-process case, internal/transport's Client serves remote
// shards (questshardd servers or loopback pipes) with streaming rows,
// retries and hedged reads, and the coordinator cannot tell them apart.
// Fragment fetches and the pushdown merge consume a backend's row stream
// incrementally when it offers one (wrapper.StreamExecutor), so merging
// starts before a remote shard finishes sending and the shard server never
// materializes the fragment. On protocol-v2 connections remote shards ship
// row batches as columnar frames (per-column dictionary/RLE encodings
// chosen from statistics — see the wire-protocol notes in internal/sql),
// which the gather consumes a decoded batch at a time.
//
// Three fast paths shortcut the general scatter-gather. Single-table
// statements without aggregation are pushed down whole: each shard runs
// the statement locally (ORDER BY included, LIMIT widened to
// OFFSET+LIMIT), and the coordinator merge-sorts the pre-sorted shard
// streams and applies LIMIT/OFFSET post-merge. Single-table aggregations
// decompose into per-shard partial aggregates (COUNT/SUM/MIN/MAX, AVG as
// sum+count — see agg.go) merged exactly at the coordinator, so aggregate
// queries ship one row per shard and group instead of their fragment
// rows. Existence probes (ExecuteExists, the engine's PruneEmpty
// validation) fan out per shard and short-circuit on the first witness
// row, canceling probes that have not started yet — validation latency
// scales with the fastest shard holding a match, not with the shard
// count.
//
// Statistics stay pushdown-friendly too: ColumnStatistics merges the
// per-shard snapshots (relational.MergeColumnStats) instead of shipping
// rows, giving engine-level consumers (core.Engine.ColumnStatistics,
// operator tooling, a future coordinator-side join planner) a whole-data
// view without row movement; each shard's own planner meanwhile keeps
// using its local statistics for fragment access paths. Note the
// coordinator's join step itself is the reference interpreter — it joins
// gathered fragments in written order and does not consult the merged
// statistics yet. AttributeScore/EdgeDistance combine per-shard relevance
// evidence (max, respectively row-agnostic mean) — approximate where
// exact merging would need global recomputation, and documented as such.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/transport"
	"repro/internal/wrapper"
)

// DefaultShardCount is the partition count used by the registered
// "sharded" backend factory (wrapper.OpenBackend) when the caller does not
// choose one explicitly.
const DefaultShardCount = 4

// ErrReadOnlyTopology is returned by ShardedSource.Insert when the
// source's backends cannot accept writes: injected backends that do not
// implement wrapper.Inserter, or remote shards whose connections
// negotiated a protocol below v3 (replication frames unavailable). Test
// with errors.Is — callers distinguish "this topology cannot take
// writes" from a row-level rejection, which surfaces as the backend's
// own error.
var ErrReadOnlyTopology = fmt.Errorf("shard: topology is read-only")

// Backend is the per-shard contract: materializing execution, the
// existence-only mode, and column statistics. Implementations MUST be safe
// for concurrent use — the coordinator fans fragment executions and
// existence probes out over a worker pool, so one query alone can hit a
// backend from several goroutines at once. A *wrapper.FullAccessSource
// over a shard's database satisfies both requirements; tests substitute
// stubs to model slow or failing shards.
type Backend interface {
	wrapper.SourceExecutor
	wrapper.StatisticsProvider
}

// scorer is the optional per-shard interface behind AttributeScore and
// EdgeDistance; backends without it contribute no relevance evidence.
type scorer interface {
	AttributeScore(table, column, keyword string) float64
	EdgeDistance(e relational.JoinEdge) (float64, error)
}

// Options tunes a ShardedSource.
type Options struct {
	// Workers bounds the shard requests in flight per coordinator call
	// (fragment fetches and existence probes alike). 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// AssumeHashRouting declares that injected backends hold partitions
	// produced by this package's routing (Partition with the same shard
	// count), enabling PK partition pruning over them. Leave false for
	// backends with unknown row placement — pruning must never drop a
	// shard that could hold a witness. Sources built by New always prune.
	AssumeHashRouting bool
}

// Stats is a snapshot of a source's coordinator counters, the
// operator-facing view of what the sharded layer is doing (questbench E11
// reports them).
type Stats struct {
	PushdownQueries     uint64 // single-table statements pushed down whole
	AggPushdownQueries  uint64 // aggregate statements decomposed into per-shard partials
	GatherQueries       uint64 // statements served by scatter-gather + coordinator merge
	FragmentQueries     uint64 // per-shard fragment executions
	RowsShipped         uint64 // rows crossing a shard→coordinator boundary
	PrunedProbes        uint64 // shard requests skipped by PK partition pruning
	ExistsProbes        uint64 // per-shard existence probes issued
	ExistsShortCircuits uint64 // exists calls answered before every probe ran
}

type counters struct {
	pushdown, aggPushdown, gather atomic.Uint64
	fragments                     atomic.Uint64
	rowsShipped, pruned           atomic.Uint64
	existsProbes, existsShort     atomic.Uint64
}

// ShardedSource implements wrapper.Source (plus the ExistsExecutor,
// StatisticsProvider and ConcurrentExecutor extensions) over hash
// partitions. It is safe for concurrent use after population: coordinator
// state is immutable or atomic, and per-shard backends are only read.
type ShardedSource struct {
	name     string
	schema   *relational.Schema
	backends []Backend
	scorers  []scorer
	// dbs holds the owned per-shard databases when the source was built by
	// New/Partition; nil for backend-injected sources, which are read-only
	// through the coordinator and never partition-pruned (the coordinator
	// cannot know a foreign backend's routing).
	dbs []*relational.Database
	// inserters holds the per-shard write surface when every injected
	// backend offers one (remote transport clients to replicated shard
	// groups); nil when any backend is read-only. Owned sources (dbs set)
	// write to their databases directly instead.
	inserters []wrapper.Inserter
	// ordMu/ordinals track rows inserted per keyless table through this
	// coordinator, continuing Partition's round-robin placement where the
	// initial split left off. PK-routed rows never consult it.
	ordMu    sync.Mutex
	ordinals map[string]int
	workers  int
	prunable bool
	// pushdownOff disables predicate pushdown and partition pruning:
	// fragments ship whole tables. It exists as the A/B ablation knob
	// behind questbench E11's ship-rows baseline, mirroring
	// sql.SetJoinReorder.
	pushdownOff atomic.Bool

	edgeMu    sync.Mutex
	edgeCache map[string]float64

	// probes tracks in-flight existence probe goroutines: existsFanOut
	// returns on the first witness without waiting for slow shards, so a
	// probe can outlive its call. Population-phase writes (Insert) and
	// Quiesce wait for it — a straggler probe must never observe a
	// concurrent mutation.
	probes sync.WaitGroup

	c counters
}

// Partition splits a database into n databases over the same schema: rows
// of tables with a primary key are routed by an FNV-1a hash of the
// (coerced) key value, rows of keyless tables round-robin by insert
// ordinal. Routing is deterministic, so a coordinator can re-derive a
// row's shard from its key — the basis of partition pruning — and
// ShardedSource.Insert keeps later rows consistent with the initial split.
// Rows are cloned; the shards own their copies.
func Partition(db *relational.Database, n int) ([]*relational.Database, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: partition count %d, want >= 1", n)
	}
	out := make([]*relational.Database, n)
	for i := range out {
		sh, err := relational.NewDatabase(fmt.Sprintf("%s-shard%d", db.Name, i), db.Schema)
		if err != nil {
			return nil, err
		}
		out[i] = sh
	}
	for _, ts := range db.Schema.Tables() {
		t := db.Table(ts.Name)
		for i, row := range t.Rows() {
			si := routeFor(ts, row, i, n)
			if err := out[si].Insert(ts.Name, row.Clone()); err != nil {
				return nil, fmt.Errorf("shard: partitioning %s: %w", ts.Name, err)
			}
		}
	}
	return out, nil
}

// routeValue hashes one key value onto [0, n). FNV-1a over the value's
// comparison key makes routing independent of process and insertion order.
func routeValue(v relational.Value, n int) int {
	h := fnv.New32a()
	h.Write([]byte(v.Key()))
	return int(h.Sum32() % uint32(n))
}

// routeFor picks the shard for one row: PK hash when the table declares a
// usable key, insert-ordinal round-robin otherwise.
func routeFor(ts *relational.TableSchema, row relational.Row, ordinal, n int) int {
	if ts.PrimaryKey != "" {
		ord := ts.ColumnIndex(ts.PrimaryKey)
		if ord >= 0 && ord < len(row) && !row[ord].IsNull() {
			if cv, err := relational.Coerce(row[ord], ts.Columns[ord].Type); err == nil {
				return routeValue(cv, n)
			}
		}
	}
	return ordinal % n
}

// New builds a ShardedSource over owned per-shard databases (normally the
// output of Partition), wrapping each in a FullAccessSource — the setup
// phase builds per-shard full-text indexes, mirroring the single-node
// wrapper. Partition pruning is enabled: the shards are known to follow
// this package's routing.
func New(name string, shards []*relational.Database, opt Options) (*ShardedSource, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: no shards")
	}
	backends := make([]Backend, len(shards))
	for i, db := range shards {
		if db.Schema != shards[0].Schema {
			return nil, fmt.Errorf("shard: shard %d has a different schema", i)
		}
		backends[i] = wrapper.NewFullAccessSource(db)
	}
	s := NewFromBackends(name, shards[0].Schema, backends, opt)
	s.dbs = shards
	s.prunable = true
	return s, nil
}

// NewFromBackends builds a ShardedSource over caller-provided backends
// (remote transport clients, test stubs). Partition pruning stays off
// unless Options.AssumeHashRouting declares the backends follow this
// package's routing. Insert works when every backend implements
// wrapper.Inserter (transport clients to replicated shard groups do) and
// returns ErrReadOnlyTopology otherwise.
func NewFromBackends(name string, schema *relational.Schema, backends []Backend, opt Options) *ShardedSource {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &ShardedSource{
		name:      name,
		schema:    schema,
		backends:  backends,
		scorers:   make([]scorer, len(backends)),
		workers:   workers,
		prunable:  opt.AssumeHashRouting,
		edgeCache: map[string]float64{},
	}
	for i, b := range backends {
		if sc, ok := b.(scorer); ok {
			s.scorers[i] = sc
		}
	}
	ins := make([]wrapper.Inserter, len(backends))
	for i, b := range backends {
		w, ok := b.(wrapper.Inserter)
		if !ok {
			ins = nil
			break
		}
		ins[i] = w
	}
	s.inserters = ins
	return s
}

// SetPushdown enables or disables predicate pushdown and partition pruning
// and returns the previous setting. Off, every fragment ships its whole
// table — the ship-rows-to-coordinator baseline questbench E11 measures
// against. Results are identical either way; only bandwidth and latency
// move.
func (s *ShardedSource) SetPushdown(on bool) (was bool) {
	return !s.pushdownOff.Swap(!on)
}

// ShardCount returns the number of shards.
func (s *ShardedSource) ShardCount() int { return len(s.backends) }

// Stats snapshots the coordinator counters.
func (s *ShardedSource) Stats() Stats {
	return Stats{
		PushdownQueries:     s.c.pushdown.Load(),
		AggPushdownQueries:  s.c.aggPushdown.Load(),
		GatherQueries:       s.c.gather.Load(),
		FragmentQueries:     s.c.fragments.Load(),
		RowsShipped:         s.c.rowsShipped.Load(),
		PrunedProbes:        s.c.pruned.Load(),
		ExistsProbes:        s.c.existsProbes.Load(),
		ExistsShortCircuits: s.c.existsShort.Load(),
	}
}

// ResetStats zeroes the coordinator counters (benchmarks). It first waits
// out straggler existence probes — their atomic increments would race a
// plain struct overwrite and pollute the fresh measurement window — then
// clears each counter atomically.
func (s *ShardedSource) ResetStats() {
	s.probes.Wait()
	s.c.pushdown.Store(0)
	s.c.aggPushdown.Store(0)
	s.c.gather.Store(0)
	s.c.fragments.Store(0)
	s.c.rowsShipped.Store(0)
	s.c.pruned.Store(0)
	s.c.existsProbes.Store(0)
	s.c.existsShort.Store(0)
}

// Quiesce blocks until every in-flight shard probe has drained — the
// boundary callers must cross before any population-phase operation on the
// shard databases that bypasses this source's own Insert.
func (s *ShardedSource) Quiesce() { s.probes.Wait() }

// Close waits out straggler probes and releases backend resources:
// backends that implement io.Closer (remote transport clients with pooled
// connections) are closed. Sources over in-process backends close to a
// no-op.
func (s *ShardedSource) Close() error {
	s.probes.Wait()
	var first error
	for _, b := range s.backends {
		if c, ok := b.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Name implements wrapper.Source.
func (s *ShardedSource) Name() string { return s.name }

// Schema implements wrapper.Source.
func (s *ShardedSource) Schema() *relational.Schema { return s.schema }

// HasInstanceAccess implements wrapper.Source: shard backends see rows.
func (s *ShardedSource) HasInstanceAccess() bool { return true }

// ExecutesConcurrently implements wrapper.ConcurrentExecutor. Coordinator
// state is atomic or immutable, and the Backend contract requires every
// shard to tolerate concurrent calls (see Backend), so the source as a
// whole does too.
func (s *ShardedSource) ExecutesConcurrently() bool { return true }

// Insert routes a row to its shard (PK hash, or round-robin for keyless
// tables) and inserts it there. Like relational.Table.Insert it belongs to
// the population phase: never call it concurrently with queries. Sources
// built by New write to their owned shard databases; backend-injected
// sources write through each backend's wrapper.Inserter — remote
// transport clients route the row to the shard group's primary and
// replicate it — and return ErrReadOnlyTopology when the backends (or
// the protocol their connections negotiated) cannot take writes.
func (s *ShardedSource) Insert(table string, row relational.Row) error {
	// Existence probes abandoned by a short-circuiting ExecuteExists may
	// still be reading shard tables; entering the population phase waits
	// them out.
	s.probes.Wait()
	ts := s.schema.Table(table)
	if ts == nil {
		return fmt.Errorf("shard: unknown table %s", table)
	}
	if s.dbs != nil {
		total := 0
		for _, db := range s.dbs {
			total += db.Table(table).Len()
		}
		si := routeFor(ts, row, total, len(s.dbs))
		return s.dbs[si].Insert(table, row)
	}
	if s.inserters == nil {
		return fmt.Errorf("source %s has backends without a write surface: %w", s.name, ErrReadOnlyTopology)
	}
	// PK routing re-derives the shard from the key alone, matching
	// Partition wherever the backends hold partitions of the same shard
	// count. Keyless tables continue round-robin from a coordinator-local
	// ordinal: placement stays balanced, and since injected backends are
	// never ordinal-pruned, any offset from the original split is
	// invisible to queries.
	ordinal := 0
	if ts.PrimaryKey == "" {
		s.ordMu.Lock()
		if s.ordinals == nil {
			s.ordinals = map[string]int{}
		}
		ordinal = s.ordinals[table]
		s.ordinals[table] = ordinal + 1
		s.ordMu.Unlock()
	}
	si := routeFor(ts, row, ordinal, len(s.inserters))
	if err := s.inserters[si].Insert(table, row); err != nil {
		if errors.Is(err, transport.ErrReadOnly) {
			return fmt.Errorf("shard %d of source %s: %v: %w", si, s.name, err, ErrReadOnlyTopology)
		}
		return fmt.Errorf("shard %d of source %s: %w", si, s.name, err)
	}
	return nil
}

// AttributeScore implements wrapper.Source as the maximum per-shard score:
// a keyword relevant to an attribute in any partition is relevant to the
// attribute. (Exact global tf-idf would need a merged index; the max is a
// monotone, partition-stable approximation.)
func (s *ShardedSource) AttributeScore(table, column, keyword string) float64 {
	best := 0.0
	for _, sc := range s.scorers {
		if sc == nil {
			continue
		}
		if v := sc.AttributeScore(table, column, keyword); v > best {
			best = v
		}
	}
	return best
}

// EdgeDistance implements wrapper.Source as the mean of the per-shard
// mutual-information distances (shards that cannot answer — empty
// partitions — are skipped). Results are cached like the single-node
// wrapper's.
func (s *ShardedSource) EdgeDistance(e relational.JoinEdge) (float64, error) {
	key := e.FromTable + "." + e.FromColumn + ">" + e.ToTable + "." + e.ToColumn
	s.edgeMu.Lock()
	d, ok := s.edgeCache[key]
	s.edgeMu.Unlock()
	if ok {
		return d, nil
	}
	sum, n := 0.0, 0
	var lastErr error
	for _, sc := range s.scorers {
		if sc == nil {
			continue
		}
		v, err := sc.EdgeDistance(e)
		if err != nil {
			lastErr = err
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		if lastErr == nil {
			lastErr = wrapper.ErrNoInstanceAccess
		}
		return 1, lastErr
	}
	d = sum / float64(n)
	s.edgeMu.Lock()
	s.edgeCache[key] = d
	s.edgeMu.Unlock()
	return d, nil
}

// ColumnStatistics implements wrapper.StatisticsProvider by merging the
// per-shard snapshots — statistics pushdown: shards ship summaries, never
// rows. The merged Version sums the shard versions, so consumers can cache
// against it exactly like a single table's. The per-shard fetches fan out
// over the source's bounded worker pool — one round-trip per shard in
// parallel (remote backends pay network latency per snapshot), never an
// unbounded goroutine per shard per column.
func (s *ShardedSource) ColumnStatistics(table, column string) (*relational.ColumnStats, error) {
	parts := make([]*relational.ColumnStats, len(s.backends))
	errs := make([]error, len(s.backends))
	s.forEach(len(s.backends), func(i int) {
		parts[i], errs[i] = s.backends[i].ColumnStatistics(table, column)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return relational.MergeColumnStats(parts), nil
}

// TableVersion implements wrapper.TableVersioner as the sum of the
// per-shard table versions — the same convention ColumnStatistics uses
// for its merged Version, so any shard's insert bumps the logical
// version and version-keyed caches (plan, query, response) invalidate
// exactly the entries that read the table. Only available when every
// backend exposes the face (owned databases always do; injected
// backends must implement it themselves).
func (s *ShardedSource) TableVersion(table string) (uint64, bool) {
	if s.dbs != nil {
		var sum uint64
		for _, db := range s.dbs {
			t := db.Table(table)
			if t == nil {
				return 0, false
			}
			sum += t.Version()
		}
		return sum, true
	}
	var sum uint64
	for _, b := range s.backends {
		tv, ok := b.(wrapper.TableVersioner)
		if !ok {
			return 0, false
		}
		v, ok := tv.TableVersion(table)
		if !ok {
			return 0, false
		}
		sum += v
	}
	return sum, true
}

// forEach runs fn(i) for i in [0, n) over the source's bounded worker pool
// (inline when one worker suffices).
func (s *ShardedSource) forEach(n int, fn func(int)) {
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// shardsFor resolves which shards a fragment must visit: all of them,
// unless pruning is legal (owned shards, pushdown on) and the fragment
// pins the table's primary key, in which case only the shards the pinned
// values route to. Values that cannot coerce to the key's column type fall
// back to the full set — such a predicate may still match under the
// engine's cross-type comparison rules, and pruning must never drop a
// potential witness.
func (s *ShardedSource) shardsFor(f *sql.TableFragment) []int {
	n := len(s.backends)
	all := func() []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if !s.prunable || s.pushdownOff.Load() || f.PKValues == nil {
		return all()
	}
	ts := s.schema.Table(f.Ref.Table)
	if ts == nil || ts.PrimaryKey == "" {
		return all()
	}
	col := ts.Column(ts.PrimaryKey)
	seen := make(map[int]bool, len(f.PKValues))
	out := make([]int, 0, len(f.PKValues))
	for _, v := range f.PKValues {
		cv, err := relational.Coerce(v, col.Type)
		if err != nil {
			return all()
		}
		si := routeValue(cv, n)
		if !seen[si] {
			seen[si] = true
			out = append(out, si)
		}
	}
	sort.Ints(out)
	s.c.pruned.Add(uint64(n - len(out)))
	return out
}

// Execute implements wrapper.Source. Single-table statements without
// aggregation push down whole (per-shard ORDER BY, widened LIMIT,
// coordinator merge-sort); single-table aggregations decompose into
// per-shard partial aggregates merged at the coordinator (agg.go);
// everything else scatter-gathers the per-table fragments and finishes at
// the coordinator.
func (s *ShardedSource) Execute(stmt *sql.SelectStmt) (*sql.Result, error) {
	return s.ExecuteCtx(context.Background(), stmt)
}

// ExecuteCtx implements wrapper.ContextExecutor: Execute bounded by a
// caller context. The context rides the scatter-gather fan-out — shard
// requests not yet started are skipped, and context-aware backends
// (remote transport clients) abandon in-flight requests — so a caller
// that gives up stops paying for shard work promptly.
func (s *ShardedSource) ExecuteCtx(ctx context.Context, stmt *sql.SelectStmt) (*sql.Result, error) {
	// The ship-rows ablation routes everything through the gather path: the
	// single-table fast path delegates WHERE evaluation to the shards, and
	// with pushdown off only the coordinator filters.
	if !s.pushdownOff.Load() {
		if s.fullPushdownOK(stmt) {
			return s.executePushdown(ctx, stmt)
		}
		if plan, ok := planAggPushdown(s.schema, stmt); ok {
			return s.executeAggPushdown(ctx, stmt, plan)
		}
	}
	return s.executeGather(ctx, stmt)
}

// ExecuteExists implements wrapper.ExistsExecutor. Single-table probes fan
// out one existence query per (non-pruned) shard and return on the first
// witness row, canceling probes that have not started; join probes gather
// the pushed-down fragments and decide emptiness at the coordinator with a
// LIMIT 1 rewrite, so their cost is the gather cost, never the full join
// result.
func (s *ShardedSource) ExecuteExists(stmt *sql.SelectStmt) (bool, error) {
	return s.ExecuteExistsCtx(context.Background(), stmt)
}

// ExecuteExistsCtx implements wrapper.ContextExistsExecutor: the
// existence fan-out is rooted in the caller's context, so cancelling the
// request cancels probes that have not started and unblocks the wait on
// in-flight ones — the coordinator returns the context's error promptly
// even when a shard backend has stalled.
func (s *ShardedSource) ExecuteExistsCtx(ctx context.Context, stmt *sql.SelectStmt) (bool, error) {
	if stmt.Limit == 0 {
		return false, nil
	}
	if len(stmt.Joins) == 0 && len(stmt.GroupBy) == 0 && stmt.Having == nil &&
		!itemsHaveAgg(stmt) && stmt.Offset == 0 {
		return s.existsFanOut(ctx, stmt)
	}
	probe := stmt.Clone()
	probe.OrderBy = nil
	probe.Limit = 1
	res, err := s.ExecuteCtx(ctx, probe)
	if err != nil {
		return false, err
	}
	return len(res.Rows) > 0, nil
}

// existsFanOut probes every candidate shard concurrently and
// short-circuits on the first hit. Probes not yet started when the hit
// lands are skipped (stop check before each probe); in-flight probes run
// to completion on their own goroutine under the probes WaitGroup and
// exit via the buffered results channel, so early return leaks nothing.
// A witness row on any shard answers true even if another shard fails —
// existence has been proven; errors only surface when no shard can prove
// it.
//
// The short-circuit deliberately does NOT cancel in-flight backend calls:
// probes.Wait() is the population-phase barrier (Insert, Quiesce, Close),
// and for remote backends a probe counts as drained only once its wire
// exchange finishes — which is also when the server-side handler is done
// touching shard tables. Abandoning the exchange early (closing the
// connection) would let probes.Wait() pass while a loopback server still
// reads the very tables a write is about to mutate. Only the CALLER's
// context abandons in-flight probes — context-aware backends return
// early, the receive loop returns ctx.Err() without waiting for stalled
// probes to drain, and crossing from a cancelled query into the
// population phase takes the same quiesce discipline as an abandoned
// hedge (transport.Server.Quiesce).
func (s *ShardedSource) existsFanOut(ctx context.Context, stmt *sql.SelectStmt) (bool, error) {
	probe := stmt.Clone()
	probe.OrderBy = nil
	frags, err := sql.Fragments(s.schema, probe)
	if err != nil {
		return false, err
	}
	shards := s.shardsFor(&frags[0])
	if len(shards) == 0 {
		return false, nil
	}
	stop := make(chan struct{})
	defer close(stop)
	type probeResult struct {
		shard int
		ok    bool
		err   error
	}
	results := make(chan probeResult, len(shards))
	jobs := make(chan int, len(shards))
	for _, si := range shards {
		jobs <- si
	}
	close(jobs)
	w := s.workers
	if w > len(shards) {
		w = len(shards)
	}
	if w < 1 {
		w = 1
	}
	for k := 0; k < w; k++ {
		s.probes.Add(1)
		go func() {
			defer s.probes.Done()
			for si := range jobs {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				s.c.existsProbes.Add(1)
				ok, perr := backendExists(ctx, s.backends[si], probe)
				results <- probeResult{shard: si, ok: ok, err: perr}
			}
		}()
	}
	var firstErr error
	firstErrShard := -1
	for received := 0; received < len(shards); received++ {
		var r probeResult
		select {
		case r = <-results:
		case <-ctx.Done():
			return false, ctx.Err()
		}
		if r.err != nil {
			if firstErrShard < 0 || r.shard < firstErrShard {
				firstErr, firstErrShard = r.err, r.shard
			}
			continue
		}
		if r.ok {
			if received < len(shards)-1 {
				s.c.existsShort.Add(1)
			}
			return true, nil
		}
	}
	return false, firstErr
}

// executeGather is the general path: fetch every fragment's qualifying
// rows from its candidate shards in parallel, then run the statement over
// the gathered base tables at the coordinator.
func (s *ShardedSource) executeGather(ctx context.Context, stmt *sql.SelectStmt) (*sql.Result, error) {
	s.c.gather.Add(1)
	frags, err := sql.Fragments(s.schema, stmt)
	if err != nil {
		return nil, err
	}
	if s.pushdownOff.Load() {
		for i := range frags {
			frags[i].Pushed = nil
			frags[i].PKValues = nil
			frags[i].Stmt.Where = nil
		}
	}
	type job struct{ frag, shard int }
	var jobs []job
	perShard := make([][][]relational.Row, len(frags))
	for fi := range frags {
		perShard[fi] = make([][]relational.Row, len(s.backends))
		for _, si := range s.shardsFor(&frags[fi]) {
			jobs = append(jobs, job{frag: fi, shard: si})
		}
	}
	errs := make([]error, len(jobs))
	s.forEach(len(jobs), func(i int) {
		if cerr := ctx.Err(); cerr != nil {
			errs[i] = cerr
			return
		}
		j := jobs[i]
		s.c.fragments.Add(1)
		rows, ferr := fetchFragment(ctx, s.backends[j.shard], frags[j.frag].Stmt)
		if ferr != nil {
			errs[i] = ferr
			return
		}
		s.c.rowsShipped.Add(uint64(len(rows)))
		perShard[j.frag][j.shard] = rows
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	tables := make([][]relational.Row, len(frags))
	for fi := range frags {
		var rows []relational.Row
		for _, shardRows := range perShard[fi] {
			rows = append(rows, shardRows...)
		}
		tables[fi] = rows
	}
	return sql.ExecuteRows(s.schema, stmt, tables)
}

// fetchResult pulls one statement's result from a backend, consuming the
// row stream incrementally when the backend offers one (remote transport
// clients deliver row or columnar frames as they arrive; columnar batches
// land through the buffer's PushBatch face without a per-row loop) and
// falling back to materializing Execute otherwise. A streaming backend may
// replay from the top on a mid-stream retry; the sink's Reset keeps the
// gathered rows exactly-once either way. Both the gather path and the
// single-table pushdown merge fetch through here, so a shard's own memory
// stays bounded by its batch size whenever the backend can stream.
//
// Dispatch prefers a backend's context-aware face at equal streaming
// capability, so cancellation reaches as deep as the backend allows:
// ContextStreamExecutor > StreamExecutor > ContextExecutor > Execute.
func fetchResult(ctx context.Context, b Backend, stmt *sql.SelectStmt) (*sql.Result, error) {
	if se, ok := b.(wrapper.ContextStreamExecutor); ok {
		var sink wrapper.RowBuffer
		cols, err := se.ExecuteStreamCtx(ctx, stmt, &sink)
		if err != nil {
			return nil, err
		}
		return &sql.Result{Columns: cols, Rows: sink.Rows}, nil
	}
	if se, ok := b.(wrapper.StreamExecutor); ok {
		var sink wrapper.RowBuffer
		cols, err := se.ExecuteStream(stmt, &sink)
		if err != nil {
			return nil, err
		}
		return &sql.Result{Columns: cols, Rows: sink.Rows}, nil
	}
	if ce, ok := b.(wrapper.ContextExecutor); ok {
		return ce.ExecuteCtx(ctx, stmt)
	}
	return b.Execute(stmt)
}

// fetchFragment is fetchResult for fragment fetches, which only need rows.
func fetchFragment(ctx context.Context, b Backend, stmt *sql.SelectStmt) ([]relational.Row, error) {
	res, err := fetchResult(ctx, b, stmt)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}

// backendExists routes an existence probe through a backend's
// context-aware face when it has one, a plain ExecuteExists otherwise.
func backendExists(ctx context.Context, b Backend, stmt *sql.SelectStmt) (bool, error) {
	if ce, ok := b.(wrapper.ContextExistsExecutor); ok {
		return ce.ExecuteExistsCtx(ctx, stmt)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return b.ExecuteExists(stmt)
}

// trimOffsetLimit applies a statement's OFFSET/LIMIT to coordinator-merged
// rows — the one post-merge trimming rule shared by the full-pushdown and
// aggregate-pushdown paths.
func trimOffsetLimit(rows []relational.Row, stmt *sql.SelectStmt) []relational.Row {
	if stmt.Offset > 0 {
		if stmt.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[stmt.Offset:]
		}
	}
	if stmt.Limit >= 0 && stmt.Limit < len(rows) {
		rows = rows[:stmt.Limit]
	}
	return rows
}

// fullPushdownOK reports whether the whole statement can run per shard
// with only a merge left for the coordinator: one table, no aggregation or
// grouping, no DISTINCT (cross-shard duplicates would survive), and ORDER
// BY keys the shards can evaluate from base columns (alias-only order keys
// take the gather path, whose finish step resolves them).
func (s *ShardedSource) fullPushdownOK(stmt *sql.SelectStmt) bool {
	if len(stmt.Joins) > 0 || len(stmt.GroupBy) > 0 || stmt.Having != nil ||
		stmt.Distinct || itemsHaveAgg(stmt) {
		return false
	}
	ts := s.schema.Table(stmt.From.Table)
	if ts == nil {
		return false
	}
	binding := strings.ToLower(stmt.From.Binding())
	for _, ob := range stmt.OrderBy {
		if sql.ContainsAggregate(ob.Expr) {
			return false
		}
		for _, r := range sql.ColumnRefs(ob.Expr) {
			if r.Table != "" && strings.ToLower(r.Table) != binding {
				return false
			}
			if ts.Column(r.Column) == nil {
				return false
			}
		}
	}
	return true
}

// executePushdown ships the whole single-table statement to every
// candidate shard — ORDER BY kept so each shard returns a sorted stream,
// LIMIT widened to OFFSET+LIMIT, OFFSET cleared (offsets only make sense
// globally) — then merge-sorts the streams on appended order-key columns
// and applies the original LIMIT/OFFSET post-merge.
func (s *ShardedSource) executePushdown(ctx context.Context, stmt *sql.SelectStmt) (*sql.Result, error) {
	s.c.pushdown.Add(1)
	frags, err := sql.Fragments(s.schema, stmt)
	if err != nil {
		return nil, err
	}
	shards := s.shardsFor(&frags[0])
	if len(shards) == 0 {
		// Fully pruned (an IN list of NULLs): no shard to merge columns
		// from — the gather path derives the projection from the schema.
		s.c.pushdown.Add(^uint64(0))
		return s.executeGather(ctx, stmt)
	}
	shardStmt := stmt.Clone()
	shardStmt.Offset = 0
	if stmt.Limit >= 0 {
		shardStmt.Limit = stmt.Offset + stmt.Limit
	}
	// Append each ORDER BY expression as a trailing projected column so the
	// coordinator can merge without re-resolving expressions; stripped
	// before returning.
	nKeys := len(shardStmt.OrderBy)
	for i, ob := range shardStmt.OrderBy {
		shardStmt.Items = append(shardStmt.Items, sql.SelectItem{
			Expr: ob.Expr, Alias: fmt.Sprintf("__mergekey%d", i),
		})
	}
	results := make([]*sql.Result, len(s.backends))
	errs := make([]error, len(s.backends))
	s.forEach(len(shards), func(i int) {
		si := shards[i]
		if cerr := ctx.Err(); cerr != nil {
			errs[si] = cerr
			return
		}
		s.c.fragments.Add(1)
		res, ferr := fetchResult(ctx, s.backends[si], shardStmt)
		if ferr != nil {
			errs[si] = ferr
			return
		}
		s.c.rowsShipped.Add(uint64(len(res.Rows)))
		results[si] = res
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	merged := mergeShardResults(results, stmt.OrderBy)
	// Post-merge LIMIT/OFFSET, then strip the merge-key columns.
	rows := trimOffsetLimit(merged.Rows, stmt)
	if nKeys > 0 {
		merged.Columns = merged.Columns[:len(merged.Columns)-nKeys]
		for i, r := range rows {
			rows[i] = r[: len(r)-nKeys : len(r)-nKeys]
		}
	}
	return &sql.Result{Columns: merged.Columns, Rows: rows}, nil
}

// mergeShardResults concatenates per-shard results in shard order, or —
// when the statement orders — k-way merges the pre-sorted shard streams on
// the trailing merge-key columns, breaking ties by shard index so the
// merge is deterministic.
func mergeShardResults(results []*sql.Result, orderBy []sql.OrderItem) *sql.Result {
	var columns []string
	for _, r := range results {
		if r != nil {
			columns = r.Columns
			break
		}
	}
	out := &sql.Result{Columns: columns}
	if len(orderBy) == 0 {
		for _, r := range results {
			if r != nil {
				out.Rows = append(out.Rows, r.Rows...)
			}
		}
		return out
	}
	heads := make([]int, len(results))
	nKeys := len(orderBy)
	keyAt := func(row relational.Row, k int) relational.Value {
		return row[len(row)-nKeys+k]
	}
	less := func(a, b relational.Row) bool {
		for k, ob := range orderBy {
			c := relational.Compare(keyAt(a, k), keyAt(b, k))
			if c == 0 {
				continue
			}
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	for {
		best := -1
		for si, r := range results {
			if r == nil || heads[si] >= len(r.Rows) {
				continue
			}
			if best < 0 || less(r.Rows[heads[si]], results[best].Rows[heads[best]]) {
				best = si
			}
		}
		if best < 0 {
			return out
		}
		out.Rows = append(out.Rows, results[best].Rows[heads[best]])
		heads[best]++
	}
}

// itemsHaveAgg reports whether any projection item aggregates.
func itemsHaveAgg(stmt *sql.SelectStmt) bool {
	for _, it := range stmt.Items {
		if !it.Star && sql.ContainsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func init() {
	wrapper.RegisterBackend("sharded", func(db *relational.Database) (wrapper.Source, error) {
		parts, err := Partition(db, DefaultShardCount)
		if err != nil {
			return nil, err
		}
		return New(db.Name, parts, Options{})
	})
	// "remote": the same partitioning, but every shard is reached through
	// the wire protocol — an in-process transport server per shard, dialed
	// over loopback pipes. Registering it here keeps the conformance
	// harness's registered-backend sweep exercising the full remote
	// execution path (frames, row codec, retries) on every run.
	wrapper.RegisterBackend("remote", func(db *relational.Database) (wrapper.Source, error) {
		parts, err := Partition(db, DefaultShardCount)
		if err != nil {
			return nil, err
		}
		backends := make([]Backend, len(parts))
		for i, p := range parts {
			c, err := transport.NewLoopbackClient(wrapper.NewFullAccessSource(p), transport.Options{})
			if err != nil {
				return nil, err
			}
			backends[i] = c
		}
		return NewFromBackends(db.Name, db.Schema, backends, Options{AssumeHashRouting: true}), nil
	})
}
