package shard

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/wrapper"
)

func aggDB(t testing.TB) *relational.Database {
	t.Helper()
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString, NotNull: true},
			{Name: "year", Type: relational.TypeInt},
			{Name: "rating", Type: relational.TypeFloat},
			{Name: "genre", Type: relational.TypeString},
		},
		PrimaryKey: "movie_id",
	}); err != nil {
		t.Fatal(err)
	}
	db := relational.MustNewDatabase("agg", s)
	genres := []string{"drama", "comedy", "noir"}
	for i := 1; i <= 300; i++ {
		year := relational.Value(relational.Int(int64(1950 + i%70)))
		if i%13 == 0 {
			year = relational.Null()
		}
		if err := db.Insert("movie", relational.Row{
			relational.Int(int64(i)),
			relational.String_(fmt.Sprintf("t%d", i)),
			year,
			relational.Float(float64(i%97) / 9),
			relational.String_(genres[i%3]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestAggPushdownMatchesReference holds the partial-aggregate path to
// reference semantics, value for value and type for type, and pins that it
// actually engaged (AggPushdownQueries moved, shipped rows collapsed to
// per-shard partials).
func TestAggPushdownMatchesReference(t *testing.T) {
	db := aggDB(t)
	ref := wrapper.NewFullAccessSource(db)
	parts, err := Partition(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	src, err := New(db.Name, parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q       string
		pushed  bool // expect the agg-pushdown path
		ordered bool
		approx  bool // float aggregate: compare within rounding slack
	}{
		{q: "SELECT COUNT(*) FROM movie", pushed: true},
		{q: "SELECT COUNT(*) FROM movie WHERE genre = 'noir'", pushed: true},
		{q: "SELECT COUNT(year), MIN(year), MAX(year), AVG(year), SUM(year) FROM movie", pushed: true},
		{q: "SELECT COUNT(*) FROM movie WHERE movie_id = 41", pushed: true},
		{q: "SELECT COUNT(*) FROM movie WHERE year > 3000", pushed: true},
		{q: "SELECT genre, COUNT(*), SUM(year) FROM movie GROUP BY genre ORDER BY genre", pushed: true, ordered: true},
		{q: "SELECT genre, COUNT(*) AS c FROM movie GROUP BY genre ORDER BY c DESC, genre", pushed: true, ordered: true},
		{q: "SELECT year, COUNT(*) FROM movie GROUP BY year ORDER BY year LIMIT 7 OFFSET 2", pushed: true, ordered: true},
		{q: "SELECT genre FROM movie GROUP BY genre ORDER BY genre", pushed: true, ordered: true},
		{q: "SELECT MIN(title), MAX(title) FROM movie", pushed: true},
		// Float SUM/AVG must NOT decompose (addition order would leak); the
		// gather path answers, itself exact only up to summation order —
		// shard concatenation visits rows in a different order than the
		// single-node scan, so the comparison allows rounding slack.
		{q: "SELECT AVG(rating) FROM movie", pushed: false, approx: true},
		// HAVING and aggregate-bearing expressions stay on the gather path.
		{q: "SELECT genre, COUNT(*) FROM movie GROUP BY genre HAVING COUNT(*) > 10 ORDER BY genre", pushed: false, ordered: true},
		// An alias shadowing a real column: the reference resolves ORDER BY
		// against the base column first, so this must not sort by the
		// alias — it stays on the gather path.
		{q: "SELECT genre AS year, COUNT(*) FROM movie GROUP BY genre ORDER BY year", pushed: false},
	}
	for _, c := range cases {
		stmt, err := sql.Parse(c.q)
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		want, err := ref.Execute(stmt)
		if err != nil {
			t.Fatalf("%s: reference: %v", c.q, err)
		}
		src.ResetStats()
		got, err := src.Execute(stmt)
		if err != nil {
			t.Fatalf("%s: sharded: %v", c.q, err)
		}
		st := src.Stats()
		if pushed := st.AggPushdownQueries > 0; pushed != c.pushed {
			t.Errorf("%s: agg pushdown engaged=%v, want %v", c.q, pushed, c.pushed)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("%s: %d rows, want %d", c.q, len(got.Rows), len(want.Rows))
		}
		match := func(a, b relational.Row) bool {
			for i := range a {
				if a[i].Type() != b[i].Type() {
					return false
				}
				if c.approx && a[i].Type() == relational.TypeFloat {
					av, bv := a[i].AsFloat(), b[i].AsFloat()
					if diff := av - bv; diff > 1e-9*(1+bv) || diff < -1e-9*(1+bv) {
						return false
					}
					continue
				}
				if a[i].Key() != b[i].Key() {
					return false
				}
			}
			return true
		}
		if c.ordered || len(want.Rows) <= 1 {
			for i := range want.Rows {
				if !match(got.Rows[i], want.Rows[i]) {
					t.Errorf("%s: row %d: got %v, want %v", c.q, i, got.Rows[i], want.Rows[i])
				}
			}
		} else {
			used := make([]bool, len(want.Rows))
		outer:
			for _, g := range got.Rows {
				for i, w := range want.Rows {
					if !used[i] && match(g, w) {
						used[i] = true
						continue outer
					}
				}
				t.Errorf("%s: unmatched row %v", c.q, g)
			}
		}
		for i := range want.Columns {
			if got.Columns[i] != want.Columns[i] {
				t.Errorf("%s: column %d %q, want %q", c.q, i, got.Columns[i], want.Columns[i])
			}
		}
	}
}

// TestAggPushdownGroupKeyNoCollision pins the coordinator merge's group
// identity: string group keys whose naive concatenations coincide —
// ("x|sy", "z") vs ("x", "y|sz") under a '|' join — must stay separate
// groups, exactly as the reference interpreter keeps them.
func TestAggPushdownGroupKeyNoCollision(t *testing.T) {
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name: "kv",
		Columns: []relational.Column{
			{Name: "id", Type: relational.TypeInt, NotNull: true},
			{Name: "a", Type: relational.TypeString},
			{Name: "b", Type: relational.TypeString},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	db := relational.MustNewDatabase("kv", s)
	rows := []struct{ a, b string }{
		{"x|sy", "z"}, {"x", "y|sz"}, {"x|sy", "z"}, {"plain", "keys"},
	}
	for i, r := range rows {
		if err := db.Insert("kv", relational.Row{
			relational.Int(int64(i + 1)), relational.String_(r.a), relational.String_(r.b),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ref := wrapper.NewFullAccessSource(db)
	parts, err := Partition(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	src, err := New(db.Name, parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sql.Parse("SELECT a, b, COUNT(*) FROM kv GROUP BY a, b ORDER BY a, b")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	src.ResetStats()
	got, err := src.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if src.Stats().AggPushdownQueries == 0 {
		t.Fatal("agg pushdown did not engage")
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%d groups, want %d (delimiter collision merged distinct groups?)", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if got.Rows[i][j].Key() != want.Rows[i][j].Key() {
				t.Errorf("group %d cell %d: got %v, want %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// TestAggPushdownShipsPartialsNotRows pins the bandwidth win: a grouped
// aggregate ships one partial row per shard and group, not the qualifying
// base rows.
func TestAggPushdownShipsPartialsNotRows(t *testing.T) {
	db := aggDB(t)
	parts, err := Partition(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	src, err := New(db.Name, parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stmt, err := sql.Parse("SELECT genre, COUNT(*) FROM movie GROUP BY genre")
	if err != nil {
		t.Fatal(err)
	}
	src.ResetStats()
	if _, err := src.Execute(stmt); err != nil {
		t.Fatal(err)
	}
	st := src.Stats()
	// 3 genres × 4 shards = at most 12 partial rows, vs 300 base rows.
	if st.RowsShipped > 12 {
		t.Errorf("aggregate shipped %d rows, want <= 12 partials", st.RowsShipped)
	}
	src.SetPushdown(false)
	src.ResetStats()
	if _, err := src.Execute(stmt); err != nil {
		t.Fatal(err)
	}
	if ship := src.Stats().RowsShipped; ship != 300 {
		t.Errorf("ship-rows ablation shipped %d rows, want 300", ship)
	}
}

// slowStatsBackend blocks in ColumnStatistics so the test can observe the
// fan-out's concurrency.
type slowStatsBackend struct {
	stubBackend
	db       *relational.Database
	inFlight *atomic.Int32
	peak     *atomic.Int32
}

func (b *slowStatsBackend) ColumnStatistics(table, column string) (*relational.ColumnStats, error) {
	n := b.inFlight.Add(1)
	for {
		p := b.peak.Load()
		if n <= p || b.peak.CompareAndSwap(p, n) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond)
	b.inFlight.Add(-1)
	return b.db.Table(table).Stats(column)
}

// TestColumnStatisticsBoundedFanOut pins the statistics fan-out to the
// source's bounded worker pool: with W workers and many more shards, at
// most W per-shard fetches run at once — and goroutine growth during the
// call stays at the pool size, never one goroutine per shard per column.
func TestColumnStatisticsBoundedFanOut(t *testing.T) {
	db := aggDB(t)
	const shards, workers = 24, 3
	var inFlight, peak atomic.Int32
	backends := make([]Backend, shards)
	for i := range backends {
		backends[i] = &slowStatsBackend{db: db, inFlight: &inFlight, peak: &peak}
	}
	src := NewFromBackends("stats", db.Schema, backends, Options{Workers: workers})

	baseline := runtime.NumGoroutine()
	quit := make(chan struct{})
	sampled := make(chan int)
	go func() {
		peak := 0
		ticker := time.NewTicker(200 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-quit:
				sampled <- peak
				return
			case <-ticker.C:
				if g := runtime.NumGoroutine(); g > peak {
					peak = g
				}
			}
		}
	}()
	for _, col := range []string{"movie_id", "year", "genre", "rating"} {
		if _, err := src.ColumnStatistics("movie", col); err != nil {
			t.Fatal(err)
		}
	}
	close(quit)
	goroutinePeak := <-sampled

	if p := peak.Load(); p > workers {
		t.Errorf("statistics fan-out ran %d shard fetches at once, pool is %d", p, workers)
	}
	// +1 for the sampling goroutine itself, +2 slack for runtime noise.
	if limit := baseline + workers + 3; goroutinePeak > limit {
		t.Errorf("goroutine peak %d during statistics fan-out, want <= %d (baseline %d + pool %d)",
			goroutinePeak, limit, baseline, workers)
	}
}
