package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/wrapper"
)

// testDB builds a small movie/person/cast_info instance with NULL foreign
// keys (the rows that must never equi-join).
func testDB(t testing.TB, movies, people, casts int) *relational.Database {
	t.Helper()
	s := relational.NewSchema()
	add := func(ts *relational.TableSchema) {
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	add(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString, NotNull: true},
			{Name: "year", Type: relational.TypeInt},
			{Name: "genre", Type: relational.TypeString},
		},
		PrimaryKey: "movie_id",
	})
	add(&relational.TableSchema{
		Name: "person",
		Columns: []relational.Column{
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true},
		},
		PrimaryKey: "person_id",
	})
	add(&relational.TableSchema{
		Name: "cast_info",
		Columns: []relational.Column{
			{Name: "cast_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt},
			{Name: "person_id", Type: relational.TypeInt},
			{Name: "role", Type: relational.TypeString},
		},
		PrimaryKey: "cast_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
			{Column: "person_id", RefTable: "person", RefColumn: "person_id"},
		},
	})
	db := relational.MustNewDatabase("sharded-test", s)
	rng := rand.New(rand.NewSource(5))
	genres := []string{"drama", "comedy", "noir", "thriller"}
	words := []string{"dark", "river", "storm", "night", "gold", "iron"}
	I, S, N := relational.Int, relational.String_, relational.Null
	for i := 1; i <= movies; i++ {
		title := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		db.Insert("movie", relational.Row{
			I(int64(i)), S(title), I(int64(1960 + rng.Intn(60))), S(genres[rng.Intn(len(genres))]),
		})
	}
	for i := 1; i <= people; i++ {
		db.Insert("person", relational.Row{I(int64(i)), S(fmt.Sprintf("p%d", i))})
	}
	for i := 1; i <= casts; i++ {
		mid := relational.Value(I(int64(1 + rng.Intn(movies))))
		pid := relational.Value(I(int64(1 + rng.Intn(people))))
		if rng.Intn(9) == 0 {
			mid = N()
		}
		db.Insert("cast_info", relational.Row{I(int64(i)), mid, pid, S("actor")})
	}
	return db
}

func openSharded(t testing.TB, db *relational.Database, shards int) *ShardedSource {
	t.Helper()
	parts, err := Partition(db, shards)
	if err != nil {
		t.Fatal(err)
	}
	src, err := New(db.Name, parts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func multiset(res *sql.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

func TestPartitionPreservesRows(t *testing.T) {
	db := testDB(t, 90, 25, 200)
	parts, err := Partition(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range db.Schema.Tables() {
		total := 0
		for _, p := range parts {
			total += p.Table(ts.Name).Len()
		}
		if total != db.Table(ts.Name).Len() {
			t.Errorf("table %s: partitions hold %d rows, want %d", ts.Name, total, db.Table(ts.Name).Len())
		}
	}
	// Routing must be a function of the PK: re-partitioning agrees.
	parts2, err := Partition(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parts {
		if parts[i].Table("movie").Len() != parts2[i].Table("movie").Len() {
			t.Fatal("partitioning is not deterministic")
		}
	}
	if _, err := Partition(db, 0); err == nil {
		t.Fatal("Partition accepted 0 shards")
	}
}

func TestShardedExecuteMatchesFullAccess(t *testing.T) {
	db := testDB(t, 120, 30, 260)
	full := wrapper.NewFullAccessSource(db)
	src := openSharded(t, db, 3)
	for _, q := range []string{
		"SELECT title, year FROM movie WHERE genre = 'drama' ORDER BY movie_id",
		"SELECT title FROM movie WHERE movie_id = 17",
		"SELECT title FROM movie WHERE year BETWEEN 1975 AND 1995 ORDER BY year, movie_id LIMIT 5",
		"SELECT title FROM movie ORDER BY year DESC, movie_id LIMIT 4 OFFSET 3",
		`SELECT person.name, movie.title FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id
			WHERE movie.genre = 'noir' ORDER BY person.person_id, movie.movie_id`,
		"SELECT COUNT(*), MIN(year) FROM movie WHERE genre = 'comedy'",
		"SELECT DISTINCT genre FROM movie ORDER BY genre",
	} {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.Execute(stmt)
		if err != nil {
			t.Fatalf("%s: full: %v", q, err)
		}
		got, err := src.Execute(stmt)
		if err != nil {
			t.Fatalf("%s: sharded: %v", q, err)
		}
		if strings.Join(got.Columns, ",") != strings.Join(want.Columns, ",") {
			t.Errorf("%s: columns %v vs %v", q, got.Columns, want.Columns)
		}
		g, w := multiset(got), multiset(want)
		if len(g) != len(w) {
			t.Fatalf("%s: %d rows vs %d", q, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Errorf("%s: row divergence\n  sharded %s\n  full    %s", q, g[i], w[i])
			}
		}
	}
}

func TestPartitionPruning(t *testing.T) {
	db := testDB(t, 100, 20, 150)
	src := openSharded(t, db, 5)
	src.ResetStats()
	res, err := src.Execute(mustParse(t, "SELECT title FROM movie WHERE movie_id = 42"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("point query returned %d rows", len(res.Rows))
	}
	st := src.Stats()
	if st.PrunedProbes != 4 {
		t.Errorf("PK equality pruned %d probes, want 4", st.PrunedProbes)
	}
	if st.FragmentQueries != 1 {
		t.Errorf("point query issued %d fragment queries, want 1", st.FragmentQueries)
	}

	src.ResetStats()
	res, err = src.Execute(mustParse(t, "SELECT title FROM movie WHERE movie_id IN (3, 42, 77) ORDER BY movie_id"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("IN query returned %d rows", len(res.Rows))
	}
	if st := src.Stats(); st.PrunedProbes == 0 {
		t.Error("IN-list PK restriction pruned nothing")
	}

	// Pruning is part of pushdown: the ship-rows ablation consults every
	// shard and ships unfiltered tables, yet answers identically.
	src.ResetStats()
	src.SetPushdown(false)
	defer src.SetPushdown(true)
	res2, err := src.Execute(mustParse(t, "SELECT title FROM movie WHERE movie_id = 42"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != 1 {
		t.Fatalf("ship-rows mode diverged: %d rows, want 1", len(res2.Rows))
	}
	st = src.Stats()
	if st.PrunedProbes != 0 {
		t.Errorf("ship-rows mode pruned %d probes, want 0", st.PrunedProbes)
	}
	if st.RowsShipped < uint64(db.Table("movie").Len()) {
		t.Errorf("ship-rows mode shipped %d rows, want the whole table (%d)",
			st.RowsShipped, db.Table("movie").Len())
	}
}

func TestShardedInsertRouting(t *testing.T) {
	db := testDB(t, 40, 10, 60)
	src := openSharded(t, db, 3)
	I, S := relational.Int, relational.String_
	if err := src.Insert("movie", relational.Row{I(1000), S("late arrival"), I(2024), S("drama")}); err != nil {
		t.Fatal(err)
	}
	res, err := src.Execute(mustParse(t, "SELECT title FROM movie WHERE movie_id = 1000"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "late arrival" {
		t.Fatalf("inserted row not found via pruned point query: %v", res.Rows)
	}
	// The row must live on exactly the shard its PK routes to.
	want := routeValue(relational.Int(1000), 3)
	for i, p := range src.dbs {
		if _, ok := p.Table("movie").LookupPK(relational.Int(1000)); ok != (i == want) {
			t.Errorf("shard %d holds pk 1000 = %v, want shard %d", i, ok, want)
		}
	}
}

func TestShardedColumnStatistics(t *testing.T) {
	db := testDB(t, 200, 40, 300)
	full := wrapper.NewFullAccessSource(db)
	src := openSharded(t, db, 3)
	want, err := full.ColumnStatistics("movie", "year")
	if err != nil {
		t.Fatal(err)
	}
	got, err := src.ColumnStatistics("movie", "year")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows || got.NullCount != want.NullCount {
		t.Errorf("rows/nulls %d/%d, want %d/%d", got.Rows, got.NullCount, want.Rows, want.NullCount)
	}
	if relational.Compare(got.Min, want.Min) != 0 || relational.Compare(got.Max, want.Max) != 0 {
		t.Errorf("min/max %v..%v, want %v..%v", got.Min, got.Max, want.Min, want.Max)
	}
	if got.Distinct < want.Distinct/2 || got.Distinct > want.Rows {
		t.Errorf("merged distinct %d implausible vs true %d", got.Distinct, want.Distinct)
	}
	if _, err := src.ColumnStatistics("movie", "nope"); err == nil {
		t.Error("unknown column accepted")
	}
}

func mustParse(t testing.TB, q string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// ---- Exists fan-out: short-circuit, cancellation, no goroutine leak ----

// stubBackend is an injectable shard for fan-out tests.
type stubBackend struct {
	exists func(stmt *sql.SelectStmt) (bool, error)
}

func (b *stubBackend) Execute(stmt *sql.SelectStmt) (*sql.Result, error) {
	return &sql.Result{}, nil
}
func (b *stubBackend) ExecuteExists(stmt *sql.SelectStmt) (bool, error) { return b.exists(stmt) }
func (b *stubBackend) ColumnStatistics(table, column string) (*relational.ColumnStats, error) {
	return nil, wrapper.ErrNoInstanceAccess
}

// TestExecuteExistsShortCircuitAndCancel proves the existence fan-out (1)
// returns as soon as one shard yields a witness row, without waiting for
// slow shards, (2) cancels probes that have not started, and (3) leaks no
// goroutines once the slow shards drain.
func TestExecuteExistsShortCircuitAndCancel(t *testing.T) {
	schema := relational.NewSchema()
	if err := schema.AddTable(&relational.TableSchema{
		Name:       "m",
		Columns:    []relational.Column{{Name: "id", Type: relational.TypeInt, NotNull: true}},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var slowStarted atomic.Int32
	slow := func() Backend {
		return &stubBackend{exists: func(*sql.SelectStmt) (bool, error) {
			slowStarted.Add(1)
			<-release
			return false, nil
		}}
	}
	fast := &stubBackend{exists: func(*sql.SelectStmt) (bool, error) { return true, nil }}
	backends := []Backend{fast, slow(), slow(), slow(), slow(), slow(), slow()}
	src := NewFromBackends("stub", schema, backends, Options{Workers: 2})

	before := runtime.NumGoroutine()
	stmt := mustParse(t, "SELECT id FROM m")
	type answer struct {
		ok  bool
		err error
	}
	done := make(chan answer, 1)
	go func() {
		ok, err := src.ExecuteExists(stmt)
		done <- answer{ok, err}
	}()
	select {
	case a := <-done:
		if a.err != nil || !a.ok {
			t.Fatalf("ExecuteExists = %v, %v; want true", a.ok, a.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExecuteExists blocked behind slow shards instead of short-circuiting")
	}
	// Cancellation: of the six slow shards, only probes already in flight
	// when the hit landed may have started — the queued remainder must have
	// been skipped.
	if n := slowStarted.Load(); n >= 6 {
		t.Errorf("cancellation failed: %d of 6 slow probes started", n)
	}
	if st := src.Stats(); st.ExistsShortCircuits != 1 {
		t.Errorf("ExistsShortCircuits = %d, want 1", st.ExistsShortCircuits)
	}

	// Unblock the in-flight probes and require the goroutine count to
	// settle back to the baseline: nothing may keep waiting on the
	// abandoned fan-out.
	close(release)
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExecuteExistsErrorAndMiss pins the fan-out's terminal cases: all
// shards empty → false; a failing shard with no witness anywhere → the
// error surfaces; a witness on one shard outranks another shard's error
// (existence was proven regardless).
func TestExecuteExistsErrorAndMiss(t *testing.T) {
	schema := relational.NewSchema()
	if err := schema.AddTable(&relational.TableSchema{
		Name:       "m",
		Columns:    []relational.Column{{Name: "id", Type: relational.TypeInt, NotNull: true}},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("shard down")
	miss := &stubBackend{exists: func(*sql.SelectStmt) (bool, error) { return false, nil }}
	fail := &stubBackend{exists: func(*sql.SelectStmt) (bool, error) { return false, boom }}
	hit := &stubBackend{exists: func(*sql.SelectStmt) (bool, error) { return true, nil }}
	stmt := mustParse(t, "SELECT id FROM m")

	src := NewFromBackends("stub", schema, []Backend{miss, miss, miss}, Options{Workers: 1})
	if ok, err := src.ExecuteExists(stmt); ok || err != nil {
		t.Fatalf("all-miss: got %v, %v", ok, err)
	}
	src = NewFromBackends("stub", schema, []Backend{miss, fail, miss}, Options{Workers: 1})
	if _, err := src.ExecuteExists(stmt); !errors.Is(err, boom) {
		t.Fatalf("miss+error: got err %v, want %v", err, boom)
	}
	src = NewFromBackends("stub", schema, []Backend{fail, hit, miss}, Options{Workers: 1})
	if ok, err := src.ExecuteExists(stmt); !ok || err != nil {
		t.Fatalf("error+hit: got %v, %v; want true", ok, err)
	}
	// LIMIT 0 can never have rows; no probe should run.
	if ok, err := src.ExecuteExists(mustParse(t, "SELECT id FROM m LIMIT 0")); ok || err != nil {
		t.Fatalf("limit-0: got %v, %v", ok, err)
	}
}

// TestShardedExistsMatchesFullAccess checks existence answers against the
// single-node source across shapes, including the join path that gathers
// at the coordinator.
func TestShardedExistsMatchesFullAccess(t *testing.T) {
	db := testDB(t, 80, 20, 150)
	full := wrapper.NewFullAccessSource(db)
	src := openSharded(t, db, 3)
	for _, q := range []string{
		"SELECT title FROM movie WHERE movie_id = 11",
		"SELECT title FROM movie WHERE movie_id = -4",
		"SELECT title FROM movie WHERE genre = 'noir'",
		"SELECT title FROM movie WHERE genre = 'nope'",
		`SELECT person.name FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id
			WHERE movie.genre = 'drama'`,
		`SELECT person.name FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			WHERE cast_info.role = 'director'`,
		"SELECT title FROM movie ORDER BY year LIMIT 3 OFFSET 1",
	} {
		stmt := mustParse(t, q)
		want, err := full.ExecuteExists(stmt)
		if err != nil {
			t.Fatalf("%s: full: %v", q, err)
		}
		got, err := src.ExecuteExists(stmt)
		if err != nil {
			t.Fatalf("%s: sharded: %v", q, err)
		}
		if got != want {
			t.Errorf("%s: exists %v, want %v", q, got, want)
		}
	}
}

func TestRegisteredShardedBackend(t *testing.T) {
	db := testDB(t, 60, 15, 90)
	src, err := wrapper.OpenBackend("sharded", db)
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := src.(*ShardedSource)
	if !ok {
		t.Fatalf("sharded backend = %T", src)
	}
	if ss.ShardCount() != DefaultShardCount {
		t.Fatalf("ShardCount = %d, want %d", ss.ShardCount(), DefaultShardCount)
	}
	res, err := ss.Execute(mustParse(t, "SELECT title FROM movie ORDER BY movie_id LIMIT 3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
}
