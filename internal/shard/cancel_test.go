package shard

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/transport"
	"repro/internal/wrapper"
)

// ctxStalledBackend stalls every context-aware call until the caller's
// context fires. The non-context faces fail loudly: once a context rides
// the scatter-gather, dispatch falling back to a context-blind face would
// silently lose cancellation, and these tests must catch that.
type ctxStalledBackend struct {
	started chan struct{} // one signal per call that began stalling
}

var errCtxFaceSkipped = errors.New("dispatch skipped the context-aware face")

func (b *ctxStalledBackend) note() {
	select {
	case b.started <- struct{}{}:
	default:
	}
}

func (b *ctxStalledBackend) ExecuteCtx(ctx context.Context, stmt *sql.SelectStmt) (*sql.Result, error) {
	b.note()
	<-ctx.Done()
	return nil, ctx.Err()
}

func (b *ctxStalledBackend) ExecuteExistsCtx(ctx context.Context, stmt *sql.SelectStmt) (bool, error) {
	b.note()
	<-ctx.Done()
	return false, ctx.Err()
}

func (b *ctxStalledBackend) Execute(*sql.SelectStmt) (*sql.Result, error) {
	return nil, errCtxFaceSkipped
}
func (b *ctxStalledBackend) ExecuteExists(*sql.SelectStmt) (bool, error) {
	return false, errCtxFaceSkipped
}
func (b *ctxStalledBackend) ColumnStatistics(string, string) (*relational.ColumnStats, error) {
	return nil, wrapper.ErrNoInstanceAccess
}

// waitGoroutineBaseline polls until the goroutine count settles back to
// the captured baseline, failing after a deadline.
func waitGoroutineBaseline(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestExecuteCtxCancellationPrompt pins deadline propagation through the
// gather fan-out: with every shard backend stalled, cancelling the
// caller's context returns context.Canceled promptly and leaks nothing.
// Before the scatter-gather was rooted in the caller's context it built
// its fan-out on context.Background(), so a cancelled search kept paying
// for every in-flight shard request.
func TestExecuteCtxCancellationPrompt(t *testing.T) {
	schema := relational.NewSchema()
	if err := schema.AddTable(&relational.TableSchema{
		Name:       "m",
		Columns:    []relational.Column{{Name: "id", Type: relational.TypeInt, NotNull: true}},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	stall := &ctxStalledBackend{started: make(chan struct{}, 8)}
	src := NewFromBackends("stub", schema, []Backend{stall, stall, stall}, Options{Workers: 2})
	stmt := mustParse(t, "SELECT id FROM m")

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	type answer struct {
		err error
	}
	done := make(chan answer, 1)
	go func() {
		_, err := src.ExecuteCtx(ctx, stmt)
		done <- answer{err}
	}()
	<-stall.started // at least one shard request is stalled in flight
	cancel()
	select {
	case a := <-done:
		if !errors.Is(a.err, context.Canceled) {
			t.Fatalf("ExecuteCtx after cancel = %v, want context.Canceled", a.err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled ExecuteCtx did not return promptly")
	}
	waitGoroutineBaseline(t, before)
}

// TestExistsFanOutCancellationStalledShard pins the fan-out's receive
// loop against a shard that never answers and is not context-aware: the
// caller's cancellation must unblock the coordinator immediately — it
// cannot wait for the stalled probe — and once the backend finally
// returns, the probe goroutines drain without a leak.
func TestExistsFanOutCancellationStalledShard(t *testing.T) {
	schema := relational.NewSchema()
	if err := schema.AddTable(&relational.TableSchema{
		Name:       "m",
		Columns:    []relational.Column{{Name: "id", Type: relational.TypeInt, NotNull: true}},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	stalled := &stubBackend{exists: func(*sql.SelectStmt) (bool, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return false, nil
	}}
	src := NewFromBackends("stub", schema, []Backend{stalled, stalled}, Options{Workers: 2})
	stmt := mustParse(t, "SELECT id FROM m")

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	type answer struct {
		ok  bool
		err error
	}
	done := make(chan answer, 1)
	go func() {
		ok, err := src.ExecuteExistsCtx(ctx, stmt)
		done <- answer{ok, err}
	}()
	<-started // a probe is stalled inside a shard backend
	cancel()
	select {
	case a := <-done:
		if !errors.Is(a.err, context.Canceled) {
			t.Fatalf("ExecuteExistsCtx after cancel = (%v, %v), want context.Canceled", a.ok, a.err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled existence probe did not return promptly despite the stalled shard")
	}

	// The stalled probes are still parked in the backend; release them and
	// require every fan-out goroutine to drain.
	close(release)
	waitGoroutineBaseline(t, before)
}

// slowStreamSource delays each streamed execution — a remote shard whose
// responses are in flight when the coordinator's caller gives up.
type slowStreamSource struct {
	*wrapper.FullAccessSource
	delay time.Duration
}

func (s *slowStreamSource) ExecuteStream(stmt *sql.SelectStmt, sink wrapper.RowSink) ([]string, error) {
	time.Sleep(s.delay)
	return s.FullAccessSource.ExecuteStream(stmt, sink)
}

// TestRemoteCancellationPrompt runs the same promptness contract over the
// wire: shard backends are transport clients against servers whose
// execution stalls, and cancelling the coordinator context must abandon
// the in-flight remote requests (the client closes their connections)
// rather than wait out the stall — then everything drains goroutine-clean.
func TestRemoteCancellationPrompt(t *testing.T) {
	db := testDB(t, 40, 10, 60)
	parts, err := Partition(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	const stall = 400 * time.Millisecond
	backends := make([]Backend, len(parts))
	clients := make([]*transport.Client, len(parts))
	for i, p := range parts {
		srv := transport.NewServer(&slowStreamSource{
			FullAccessSource: wrapper.NewFullAccessSource(p),
			delay:            stall,
		})
		c, err := transport.NewClient([]transport.Dialer{transport.LoopbackDialer(srv)}, transport.Options{})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		backends[i] = c
	}
	src := NewFromBackends(db.Name, db.Schema, backends, Options{AssumeHashRouting: true})
	stmt := mustParse(t, "SELECT title FROM movie WHERE year > 1960")

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := src.ExecuteCtx(ctx, stmt)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // both remote requests are in flight, stalled server-side
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("remote ExecuteCtx after cancel = %v, want context.Canceled", err)
		}
		if waited := time.Since(start); waited > stall {
			t.Fatalf("cancel took %v, longer than the server stall %v — cancellation waited out the request", waited, stall)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled remote ExecuteCtx did not return promptly")
	}

	// The loopback servers finish their stalled executions in the
	// background; after closing the clients everything must drain.
	for _, c := range clients {
		c.Close()
	}
	waitGoroutineBaseline(t, before)
}
