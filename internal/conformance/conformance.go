// Package conformance is the cross-backend differential harness: it holds
// every execution backend to the reference semantics of the single-node
// FullAccessSource, query by query. A backend conforms when, for every
// statement, it returns the same error disposition, the same columns, and
// the same rows — byte-identical in sequence when the statement's ORDER BY
// pins a total order, byte-identical as a canonical multiset otherwise
// (SQL leaves tie order unspecified, and a partitioned execution may
// legally interleave ties differently than a single scan). Statements with
// LIMIT/OFFSET but no total order compare row counts only: which rows
// survive the cut is legitimately order-dependent. Existence probes
// (wrapper.ExecuteExists — the engine's PruneEmpty path) must agree with
// materialized emptiness on both sources.
//
// The test suite in this package runs the harness against ShardedSource at
// 1, 3 and 7 shards, table-driven and seeded-fuzz, with concurrent query
// batches and interleaved insert rounds, under the race detector (`make
// conformance`).
package conformance

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/wrapper"
)

// Query is one differential case.
type Query struct {
	SQL string
	// TotalOrder declares that the ORDER BY clause admits exactly one row
	// sequence (it ends on a unique key), so the comparison is positional.
	TotalOrder bool
}

// canonicalRow renders a row as its comparison-key encoding — the byte
// form two backends must agree on.
func canonicalRow(r relational.Row) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.Key())
		b.WriteByte('|')
	}
	return b.String()
}

func canonicalRows(res *sql.Result, sorted bool) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = canonicalRow(r)
	}
	if sorted {
		sort.Strings(out)
	}
	return out
}

// Check runs one query on the reference and the candidate and returns a
// description of the first divergence, or nil when the candidate conforms.
func Check(ref, cand wrapper.Source, q Query) error {
	stmt, err := sql.Parse(q.SQL)
	if err != nil {
		return fmt.Errorf("conformance: Parse(%q): %v", q.SQL, err)
	}
	want, werr := ref.Execute(stmt)
	got, gerr := cand.Execute(stmt)
	if (werr != nil) != (gerr != nil) {
		return fmt.Errorf("conformance: error divergence for %q: reference=%v candidate=%v", q.SQL, werr, gerr)
	}
	if werr != nil {
		return nil // both reject; message wording is not part of the contract
	}
	if strings.Join(got.Columns, "\x1f") != strings.Join(want.Columns, "\x1f") {
		return fmt.Errorf("conformance: column divergence for %q: %v vs %v", q.SQL, got.Columns, want.Columns)
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Errorf("conformance: row-count divergence for %q: candidate=%d reference=%d",
			q.SQL, len(got.Rows), len(want.Rows))
	}
	limited := stmt.Limit >= 0 || stmt.Offset > 0
	switch {
	case q.TotalOrder:
		g, w := canonicalRows(got, false), canonicalRows(want, false)
		for i := range g {
			if g[i] != w[i] {
				return fmt.Errorf("conformance: ordered row %d divergence for %q:\n  candidate %s\n  reference %s",
					i, q.SQL, g[i], w[i])
			}
		}
	case limited:
		// Row count already compared; the surviving set is order-dependent.
	default:
		g, w := canonicalRows(got, true), canonicalRows(want, true)
		for i := range g {
			if g[i] != w[i] {
				return fmt.Errorf("conformance: multiset divergence for %q:\n  candidate %s\n  reference %s",
					q.SQL, g[i], w[i])
			}
		}
	}

	// Existence must agree with materialized emptiness on both backends.
	wex, werr := wrapper.ExecuteExists(ref, stmt)
	gex, gerr := wrapper.ExecuteExists(cand, stmt)
	if werr != nil || gerr != nil {
		return fmt.Errorf("conformance: exists error for %q: reference=%v candidate=%v", q.SQL, werr, gerr)
	}
	if wex != gex {
		return fmt.Errorf("conformance: exists divergence for %q: candidate=%v reference=%v", q.SQL, gex, wex)
	}
	if wantEmpty := len(want.Rows) == 0; stmt.Limit != 0 && stmt.Offset == 0 && wex == wantEmpty {
		return fmt.Errorf("conformance: reference exists=%v contradicts its own %d rows for %q", wex, len(want.Rows), q.SQL)
	}
	return nil
}
