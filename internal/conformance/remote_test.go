package conformance

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/relational"
	"repro/internal/shard"
	"repro/internal/sql"
	"repro/internal/transport"
	"repro/internal/wrapper"
)

// newRemoteSharded builds the remote topology over already-partitioned
// databases: one transport server per shard (each over its own
// FullAccessSource), reached through loopback connections by a
// ShardedSource of transport clients. Every query crosses the full wire
// path — fragment SQL out, length-prefixed row frames back.
func newRemoteSharded(t testing.TB, name string, parts []*relational.Database, opt transport.Options) *shard.ShardedSource {
	t.Helper()
	backends := make([]shard.Backend, len(parts))
	for i, p := range parts {
		c, err := transport.NewLoopbackClient(wrapper.NewFullAccessSource(p), opt)
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = c
	}
	return shard.NewFromBackends(name, parts[0].Schema, backends,
		shard.Options{AssumeHashRouting: true})
}

// TestConformanceRemote is the remote differential suite: every query
// shape against FullAccessSource and a ShardedSource whose every shard is
// behind the wire protocol, at 1, 3 and 7 shards, with concurrent query
// batches and interleaved insert rounds, under the race detector (`make
// conformance-remote`).
func TestConformanceRemote(t *testing.T) {
	for _, shards := range []int{1, 3, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			db := conformanceDB(t)
			ref := wrapper.NewFullAccessSource(db)
			parts, err := shard.Partition(db, shards)
			if err != nil {
				t.Fatal(err)
			}
			remote := newRemoteSharded(t, db.Name, parts, transport.Options{})
			defer remote.Close()
			// Mutations go through an owned source over the same shard
			// databases: this sweep pins the read path against shared
			// backends, while the remote write path (single-replica
			// groups here would exercise it trivially) is covered with
			// real fault topologies in fault_test.go.
			owned, err := shard.New(db.Name, parts, shard.Options{})
			if err != nil {
				t.Fatal(err)
			}
			queries := append(tableCases(), fuzzCases(131+int64(shards), 100)...)
			for round := 0; round < 3; round++ {
				runBatch(t, ref, remote, queries)
				// Population phase: both coordinators must be quiesced
				// before rows move under the servers.
				remote.Quiesce()
				insertRound(t, db, owned, round)
			}
			queries = append(queries,
				Query{SQL: "SELECT title FROM movie WHERE movie_id = 1105"},
				Query{SQL: "SELECT COUNT(*) FROM movie WHERE title MATCH 'sequel'"},
				Query{SQL: `SELECT person.name FROM person
					JOIN cast_info ON cast_info.person_id = person.person_id
					WHERE cast_info.cast_id > 1000 ORDER BY cast_info.cast_id`, TotalOrder: true},
			)
			runBatch(t, ref, remote, queries)

			// Statistics parity: the merged remote snapshot must agree with
			// the owned coordinator's merge (same shards, same merge rule).
			for _, col := range []string{"movie_id", "year", "genre"} {
				want, err := owned.ColumnStatistics("movie", col)
				if err != nil {
					t.Fatal(err)
				}
				got, err := remote.ColumnStatistics("movie", col)
				if err != nil {
					t.Fatal(err)
				}
				if got.Rows != want.Rows || got.NullCount != want.NullCount ||
					got.Distinct != want.Distinct ||
					got.Min.Key() != want.Min.Key() || got.Max.Key() != want.Max.Key() {
					t.Errorf("movie.%s statistics diverge over the wire: got %+v want %+v", col, got, want)
				}
			}
		})
	}
}

// TestConformanceRemoteProtocolV1 re-runs the table-driven cases with the
// clients pinned to protocol version 1 at every shard count: the legacy
// row-frame path must stay byte-identical to the reference even while the
// servers prefer columnar v2 frames for everyone else. This is the
// compatibility half of the columnar rollout — old clients keep working
// against new servers with no semantic drift.
func TestConformanceRemoteProtocolV1(t *testing.T) {
	for _, shards := range []int{1, 3, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			db := conformanceDB(t)
			ref := wrapper.NewFullAccessSource(db)
			parts, err := shard.Partition(db, shards)
			if err != nil {
				t.Fatal(err)
			}
			remote := newRemoteSharded(t, db.Name, parts, transport.Options{Protocol: transport.ProtocolV1})
			defer remote.Close()
			runBatch(t, ref, remote, tableCases())
		})
	}
}

// TestConformanceRemoteTCP runs the table-driven cases against questshardd-
// shaped servers on real sockets — one TCP listener per shard — to keep the
// socket path (dialing, pooling, partial reads) under the same contract as
// the loopback pipes.
func TestConformanceRemoteTCP(t *testing.T) {
	const shards = 3
	db := conformanceDB(t)
	ref := wrapper.NewFullAccessSource(db)
	parts, err := shard.Partition(db, shards)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]shard.Backend, shards)
	for i, p := range parts {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go transport.NewServer(wrapper.NewFullAccessSource(p)).Serve(l)
		c, err := transport.Dial([]string{l.Addr().String()}, transport.Options{})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = c
	}
	remote := shard.NewFromBackends(db.Name, db.Schema, backends, shard.Options{AssumeHashRouting: true})
	defer remote.Close()
	for _, q := range tableCases() {
		if err := Check(ref, remote, q); err != nil {
			t.Error(err)
		}
	}
}

// TestRemoteNoGoroutineLeak pins the acceptance bound: after thousands of
// queries through the remote topology and a Close, the process is back to
// its goroutine baseline — retries, short-circuited probes and pooled
// connections all drain.
func TestRemoteNoGoroutineLeak(t *testing.T) {
	db := conformanceDB(t)
	parts, err := shard.Partition(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	remote := newRemoteSharded(t, db.Name, parts, transport.Options{})
	queries := []Query{
		{SQL: "SELECT title FROM movie WHERE movie_id = 17"},
		{SQL: "SELECT COUNT(*) FROM movie WHERE genre = 'drama'"},
		{SQL: `SELECT movie.title FROM movie
			JOIN cast_info ON cast_info.movie_id = movie.movie_id
			WHERE cast_info.role = 'actor' LIMIT 5`},
	}
	n := 3000
	if testing.Short() {
		n = 300
	}
	stmts := make([]*sql.SelectStmt, len(queries))
	for i, q := range queries {
		stmt, err := sql.Parse(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		stmts[i] = stmt
	}
	for i := 0; i < n; i++ {
		stmt := stmts[i%len(stmts)]
		if _, err := remote.Execute(stmt); err != nil {
			t.Fatal(err)
		}
		if _, err := remote.ExecuteExists(stmt); err != nil {
			t.Fatal(err)
		}
	}
	remote.Close()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("%d goroutines leaked after %d remote queries", g-before, n)
	}
}
