package conformance

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/relational"
	"repro/internal/shard"
	"repro/internal/sql"
	"repro/internal/transport"
	"repro/internal/wrapper"
)

// faultNet is the deterministic fault injector behind the replicated
// conformance suite: a named in-process network of replica servers whose
// links can be killed (dial refused, established connections severed —
// coordinator pools and primary replication links alike), healed, or
// handed to a fresh server to model a process restart. Coordinator
// dialers and every server's backup resolver both route through it, so
// one kill partitions a replica from the whole fleet at once.
type faultNet struct {
	mu    sync.Mutex
	srvs  map[string]*transport.Server
	down  map[string]bool
	conns map[string][]net.Conn
}

func newFaultNet() *faultNet {
	return &faultNet{
		srvs:  map[string]*transport.Server{},
		down:  map[string]bool{},
		conns: map[string][]net.Conn{},
	}
}

func (n *faultNet) add(name string, srv *transport.Server) {
	srv.Resolver = n.dial
	n.mu.Lock()
	n.srvs[name] = srv
	n.mu.Unlock()
}

func (n *faultNet) dial(name string) (net.Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	srv := n.srvs[name]
	if srv == nil || n.down[name] {
		return nil, fmt.Errorf("faultnet: %s is unreachable", name)
	}
	cc, sc := net.Pipe()
	n.conns[name] = append(n.conns[name], cc, sc)
	go srv.ServeConn(sc)
	return cc, nil
}

func (n *faultNet) dialer(name string) transport.Dialer {
	return func() (net.Conn, error) { return n.dial(name) }
}

// kill severs the named replica from the fleet. The server object keeps
// its state, so a later heal models a network partition ending; pairing
// it with a fresh server models a crash.
func (n *faultNet) kill(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[name] = true
	for _, c := range n.conns[name] {
		c.Close()
	}
	n.conns[name] = nil
}

func (n *faultNet) heal(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[name] = false
}

func (n *faultNet) restart(name string, srv *transport.Server) {
	n.add(name, srv)
	n.heal(name)
}

func (n *faultNet) killAll() {
	n.mu.Lock()
	names := make([]string, 0, len(n.srvs))
	for name := range n.srvs {
		names = append(names, name)
	}
	n.mu.Unlock()
	for _, name := range names {
		n.kill(name)
	}
}

// replicatedFleet is the full replicated topology: NS shard groups of R
// replicas each, every replica a transport server over its own copy of
// the shard's partition, fronted by one replicated client per group and a
// ShardedSource over those clients.
type replicatedFleet struct {
	net     *faultNet
	dbs     [][]*relational.Database // [shard][replica]
	srvs    [][]*transport.Server
	clients []*transport.Client
	src     *shard.ShardedSource
}

func replicaName(shard, replica int) string { return fmt.Sprintf("s%dr%d", shard, replica) }

// newReplicatedFleet partitions the reference database NS ways, R times
// over — Partition is deterministic, so replica copies are identical —
// and wires the whole fleet through one fault net.
func newReplicatedFleet(t testing.TB, db *relational.Database, ns, r int, opt transport.Options) *replicatedFleet {
	t.Helper()
	f := &replicatedFleet{net: newFaultNet()}
	f.dbs = make([][]*relational.Database, ns)
	f.srvs = make([][]*transport.Server, ns)
	for rep := 0; rep < r; rep++ {
		parts, err := shard.Partition(db, ns)
		if err != nil {
			t.Fatal(err)
		}
		for si := 0; si < ns; si++ {
			srv := transport.NewServer(wrapper.NewFullAccessSource(parts[si]))
			f.net.add(replicaName(si, rep), srv)
			f.dbs[si] = append(f.dbs[si], parts[si])
			f.srvs[si] = append(f.srvs[si], srv)
		}
	}
	backends := make([]shard.Backend, ns)
	for si := 0; si < ns; si++ {
		specs := make([]transport.ReplicaSpec, r)
		for rep := 0; rep < r; rep++ {
			name := replicaName(si, rep)
			specs[rep] = transport.ReplicaSpec{Name: name, Dial: f.net.dialer(name)}
		}
		c, err := transport.NewReplicatedClient(specs, opt)
		if err != nil {
			t.Fatal(err)
		}
		f.clients = append(f.clients, c)
		backends[si] = c
	}
	f.src = shard.NewFromBackends(db.Name, db.Schema, backends, shard.Options{AssumeHashRouting: true})
	t.Cleanup(func() {
		f.src.Close() // closes the clients
		f.net.killAll()
	})
	return f
}

// quiesce crosses the population-phase boundary fleet-wide: coordinator
// probe stragglers and in-flight server dispatches both drain.
func (f *replicatedFleet) quiesce() {
	f.src.Quiesce()
	for _, group := range f.srvs {
		for _, srv := range group {
			srv.Quiesce()
		}
	}
}

func (f *replicatedFleet) probeAll() {
	for _, c := range f.clients {
		c.ProbeNow()
	}
}

// requireFullRotation asserts every replica of every shard group is back
// in the read rotation at a common op sequence.
func (f *replicatedFleet) requireFullRotation(t *testing.T) {
	t.Helper()
	for si, c := range f.clients {
		st := c.FleetStatus()
		for _, rs := range st.Replicas {
			if !rs.InRotation {
				t.Fatalf("shard %d replica %s out of rotation: %+v", si, rs.Name, st)
			}
			if rs.LastSeq != st.Replicas[0].LastSeq {
				t.Fatalf("shard %d replica %s at seq %d, others at %d", si, rs.Name, rs.LastSeq, st.Replicas[0].LastSeq)
			}
		}
	}
}

// faultInsertBatch writes one batch of movies and casts to the reference
// database and through the replicated coordinator alike, invoking fault
// at the halfway point — the "replica dies mid-batch" moment.
func faultInsertBatch(t *testing.T, db *relational.Database, f *replicatedFleet, base int64, fault func()) {
	t.Helper()
	I, S, N := relational.Int, relational.String_, relational.Null
	apply := func(table string, row relational.Row) {
		if err := db.Insert(table, row.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := f.src.Insert(table, row.Clone()); err != nil {
			t.Fatalf("replicated insert (table %s, base %d): %v", table, base, err)
		}
	}
	for i := int64(0); i < 10; i++ {
		if i == 5 && fault != nil {
			fault()
		}
		apply("movie", relational.Row{
			I(base + i), S(fmt.Sprintf("aftermath storm %d", base+i)), I(1970 + (base+i)%50),
			relational.Float(float64(i) / 3), S("noir"),
		})
	}
	for i := int64(0); i < 8; i++ {
		mid := relational.Value(I(base + i%10))
		if i%5 == 0 {
			mid = N()
		}
		apply("cast_info", relational.Row{I(base + i), mid, I(1 + i%120), S("actor")})
	}
}

// TestConformanceFaults is the fault-injection differential suite: at 1,
// 3 and 7 shard groups of three replicas each, it kills a backup
// mid-insert-batch, kills the primary (forcing promotion), partitions a
// replica across a query batch, and restarts a replica over retained
// storage — and holds every degraded and healed topology byte-identical
// to the reference FullAccessSource throughout. Run under the race
// detector via `make conformance-faults`.
func TestConformanceFaults(t *testing.T) {
	const replicas = 3
	for _, shards := range []int{1, 3, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			db := conformanceDB(t)
			ref := wrapper.NewFullAccessSource(db)
			f := newReplicatedFleet(t, db, shards, replicas, transport.Options{
				MaxAttempts:        6,
				RetryBackoff:       time.Millisecond,
				ProbeFailThreshold: 2,
			})
			queries := append(tableCases(), fuzzCases(211+int64(shards), 60)...)

			// Healthy baseline.
			runBatch(t, ref, f.src, queries)

			// Scenario 1: a backup dies mid-insert-batch. The batch must
			// complete (the primary reports the dead backup, the catalog
			// demotes it), and the degraded topology must stay
			// byte-identical.
			f.quiesce()
			faultInsertBatch(t, db, f, 2000, func() { f.net.kill(replicaName(0, 1)) })
			f.quiesce()
			runBatch(t, ref, f.src, queries)
			if st := f.clients[0].FleetStatus(); st.Replicas[1].InRotation {
				t.Fatal("backup killed mid-batch still in rotation")
			}
			// Heal: replay-on-rejoin readmits it, and the fleet is whole.
			f.net.heal(replicaName(0, 1))
			f.probeAll()
			f.requireFullRotation(t)
			runBatch(t, ref, f.src, queries)

			// Scenario 2: the primary dies. The next insert batch rides the
			// failover — a backup is promoted at a bumped epoch — and both
			// degraded and healed topologies answer identically. The deposed
			// primary later rejoins as a fenced, replayed backup.
			f.quiesce()
			f.net.kill(replicaName(0, 0))
			faultInsertBatch(t, db, f, 2100, nil)
			st := f.clients[0].FleetStatus()
			if st.Primary == replicaName(0, 0) {
				t.Fatalf("dead primary still leads shard 0: %+v", st)
			}
			if cs := f.clients[0].Stats(); cs.Promotions == 0 {
				t.Fatalf("no promotion counted after primary death: %+v", cs)
			}
			f.quiesce()
			runBatch(t, ref, f.src, queries)
			f.net.heal(replicaName(0, 0))
			f.probeAll()
			f.requireFullRotation(t)
			runBatch(t, ref, f.src, queries)

			// Scenario 3: a replica is partitioned away across a whole query
			// batch (server state intact, links dead), then healed. Reads
			// must never fail in between — retries walk the rotation.
			f.net.kill(replicaName(0, 2))
			runBatch(t, ref, f.src, queries)
			f.net.heal(replicaName(0, 2))
			f.probeAll()
			f.requireFullRotation(t)

			// Scenario 4: restart over retained storage. The replica's
			// database survives, its in-memory replication state does not;
			// the recovered sequence (the durability layer's contract) plus
			// replay-on-rejoin brings it back with no duplicate and no gap.
			f.quiesce()
			f.net.kill(replicaName(0, 1))
			_, _, seqAtCrash := f.srvs[0][1].ReplicationStatus()
			faultInsertBatch(t, db, f, 2200, nil)
			srv2 := transport.NewServer(wrapper.NewFullAccessSource(f.dbs[0][1]))
			srv2.RecoverReplicaState(seqAtCrash)
			f.srvs[0][1] = srv2
			f.net.restart(replicaName(0, 1), srv2)
			f.probeAll()
			f.requireFullRotation(t)

			// Final pass including probes that only exist post-insert.
			queries = append(queries,
				Query{SQL: "SELECT title FROM movie WHERE movie_id = 2205"},
				Query{SQL: "SELECT COUNT(*) FROM movie WHERE genre = 'noir' AND year > 1969"},
				Query{SQL: `SELECT movie.title, cast_info.role FROM movie
					JOIN cast_info ON cast_info.movie_id = movie.movie_id
					WHERE cast_info.cast_id >= 2000 ORDER BY cast_info.cast_id`, TotalOrder: true},
			)
			runBatch(t, ref, f.src, queries)
		})
	}
}

// TestFaultFailoverWithinProbeWindow exercises the background prober: the
// primary of a shard group dies with no write traffic at all, and within
// a few probe intervals the fleet demotes it and promotes a backup. After
// promotion, queries — including ones that land on the failed-over group
// — must all succeed.
func TestFaultFailoverWithinProbeWindow(t *testing.T) {
	db := conformanceDB(t)
	ref := wrapper.NewFullAccessSource(db)
	f := newReplicatedFleet(t, db, 3, 3, transport.Options{
		MaxAttempts:        4,
		RetryBackoff:       time.Millisecond,
		ProbeInterval:      2 * time.Millisecond,
		ProbeFailThreshold: 2,
	})
	// One write configures every group (electing s*r0 primary).
	faultInsertBatch(t, db, f, 3000, nil)
	f.quiesce()

	f.net.kill(replicaName(1, 0))
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := f.clients[1].FleetStatus()
		if st.Primary != "" && st.Primary != replicaName(1, 0) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober did not fail over shard 1: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cs := f.clients[1].Stats()
	if cs.Demotions == 0 || cs.Promotions == 0 || cs.ProbeFailures == 0 {
		t.Fatalf("failover counters unmoved: %+v", cs)
	}
	// Zero failed queries after promotion.
	runBatch(t, ref, f.src, tableCases())
}

// TestFaultNoGoroutineLeak pins the acceptance bound: ten thousand
// queries through the replicated topology while replicas are killed and
// healed underneath it, with the prober running — then a Close, and the
// process must settle back to its goroutine baseline.
func TestFaultNoGoroutineLeak(t *testing.T) {
	db := conformanceDB(t)
	before := runtime.NumGoroutine()
	f := newReplicatedFleet(t, db, 3, 2, transport.Options{
		MaxAttempts:        4,
		RetryBackoff:       time.Millisecond,
		ProbeInterval:      time.Millisecond,
		ProbeFailThreshold: 2,
	})
	queries := []string{
		"SELECT title FROM movie WHERE movie_id = 17",
		"SELECT COUNT(*) FROM movie WHERE genre = 'drama'",
		"SELECT person.name FROM person JOIN cast_info ON cast_info.person_id = person.person_id WHERE cast_info.cast_id = 40",
	}
	stmts := make([]*sql.SelectStmt, len(queries))
	for i, q := range queries {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		stmts[i] = stmt
	}
	n := 10000
	if testing.Short() {
		n = 1000
	}
	// Rotate a single fault around the fleet: kill one replica, run
	// queries against the degraded topology, heal it, move on. At most one
	// replica per shard group is ever down, so every query has a live
	// target within its retry budget.
	faulty := 0
	for i := 0; i < n; i++ {
		if i%500 == 0 {
			f.net.heal(replicaName(faulty%3, faulty%2))
			faulty++
			f.net.kill(replicaName(faulty%3, faulty%2))
		}
		stmt := stmts[i%len(stmts)]
		if _, err := f.src.Execute(stmt); err != nil {
			t.Fatalf("query %d with faults active: %v", i, err)
		}
		if _, err := f.src.ExecuteExists(stmt); err != nil {
			t.Fatalf("exists %d with faults active: %v", i, err)
		}
	}
	f.net.heal(replicaName(faulty%3, faulty%2))
	f.src.Close()
	f.net.killAll()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("%d goroutines leaked after %d queries with faults active", g-before, n)
	}
}
