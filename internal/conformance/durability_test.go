package conformance

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/relational"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// durableFleet is a replicatedFleet whose replicas are WAL-backed: every
// server logs its applies to its own directory, so a crash-then-restart
// rebuilds the replica from disk alone (schema-only base, no copy of the
// reference data) and rejoins through op-log replay.
type durableFleet struct {
	*replicatedFleet
	dirs   [][]string // [shard][replica] WAL directory
	logs   [][]*wal.Log
	schema *relational.Schema
	name   string
	wopt   wal.Options
}

// newDurableFleet mirrors newReplicatedFleet with a WAL under every
// replica. Partition is deterministic, so replica copies are identical;
// each replica's first Open snapshots its partition into its directory.
func newDurableFleet(t testing.TB, db *relational.Database, ns, r int, opt transport.Options, wopt wal.Options) *durableFleet {
	t.Helper()
	f := &durableFleet{
		replicatedFleet: &replicatedFleet{net: newFaultNet()},
		schema:          db.Schema,
		name:            db.Name,
		wopt:            wopt,
	}
	f.dbs = make([][]*relational.Database, ns)
	f.srvs = make([][]*transport.Server, ns)
	f.dirs = make([][]string, ns)
	f.logs = make([][]*wal.Log, ns)
	for rep := 0; rep < r; rep++ {
		parts, err := shard.Partition(db, ns)
		if err != nil {
			t.Fatal(err)
		}
		for si := 0; si < ns; si++ {
			dir := t.TempDir()
			l, rec, err := wal.Open(dir, parts[si], wopt)
			if err != nil {
				t.Fatal(err)
			}
			srv := transport.NewServer(wrapper.NewFullAccessSource(rec.DB))
			srv.AttachWAL(l)
			f.net.add(replicaName(si, rep), srv)
			f.dbs[si] = append(f.dbs[si], rec.DB)
			f.srvs[si] = append(f.srvs[si], srv)
			f.dirs[si] = append(f.dirs[si], dir)
			f.logs[si] = append(f.logs[si], l)
		}
	}
	backends := make([]shard.Backend, ns)
	for si := 0; si < ns; si++ {
		specs := make([]transport.ReplicaSpec, r)
		for rep := 0; rep < r; rep++ {
			name := replicaName(si, rep)
			specs[rep] = transport.ReplicaSpec{Name: name, Dial: f.net.dialer(name)}
		}
		c, err := transport.NewReplicatedClient(specs, opt)
		if err != nil {
			t.Fatal(err)
		}
		f.clients = append(f.clients, c)
		backends[si] = c
	}
	f.src = shard.NewFromBackends(db.Name, db.Schema, backends, shard.Options{AssumeHashRouting: true})
	t.Cleanup(func() {
		f.src.Close()
		f.net.killAll()
		for _, group := range f.logs {
			for _, l := range group {
				l.Close()
			}
		}
	})
	return f
}

// restartFromWAL rebuilds replica (si, rep) purely from its WAL
// directory — the process-crash restart: the old log is closed (a real
// crash just abandons it; torn-tail handling is pinned by the wal
// package's own tests), and the new server starts from a schema-only
// base, recovering data and sequence off disk. AttachWAL seeds the
// replication state; no RecoverReplicaState call.
func (f *durableFleet) restartFromWAL(t *testing.T, si, rep int) *wal.Recovery {
	t.Helper()
	f.logs[si][rep].Close()
	empty, err := relational.NewDatabase(f.name, f.schema)
	if err != nil {
		t.Fatal(err)
	}
	l, rec, err := wal.Open(f.dirs[si][rep], empty, f.wopt)
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer(wrapper.NewFullAccessSource(rec.DB))
	srv.AttachWAL(l)
	f.dbs[si][rep] = rec.DB
	f.srvs[si][rep] = srv
	f.logs[si][rep] = l
	f.net.restart(replicaName(si, rep), srv)
	return rec
}

// TestConformanceDurability is the crash-recovery differential suite: at
// 1, 3 and 7 shard groups of three WAL-backed replicas each, it kills a
// backup and then the primary mid-insert-batch, restarts each from its
// WAL directory alone, and finally crashes an entire shard group at
// once — holding every degraded, recovering and healed topology
// byte-identical to the reference FullAccessSource. Run under the race
// detector via `make conformance-durability`.
func TestConformanceDurability(t *testing.T) {
	const replicas = 3
	for _, shards := range []int{1, 3, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			db := conformanceDB(t)
			ref := wrapper.NewFullAccessSource(db)
			f := newDurableFleet(t, db, shards, replicas, transport.Options{
				MaxAttempts:        6,
				RetryBackoff:       time.Millisecond,
				ProbeFailThreshold: 2,
			}, wal.Options{
				NoFsync:       true, // page-cache durability: plenty for an in-process crash model
				SnapshotEvery: 25,   // exercise checkpoints on the live write path
			})
			queries := append(tableCases(), fuzzCases(977+int64(shards), 60)...)

			// Healthy baseline over WAL-backed replicas: the durable write
			// path must change nothing semantically.
			runBatch(t, ref, f.src, queries)

			// Scenario 1: a backup dies mid-insert-batch and restarts from
			// its WAL directory. Recovery must land on the pre-crash
			// sequence, rejoin must replay only the missed tail (a duplicate
			// apply would blow the primary-key check and knock it back out),
			// and the healed fleet stays byte-identical.
			f.quiesce()
			faultInsertBatch(t, db, f.replicatedFleet, 2000, func() { f.net.kill(replicaName(0, 1)) })
			f.quiesce()
			runBatch(t, ref, f.src, queries)
			seqBefore := f.serverSeq(0, 1)
			rec := f.restartFromWAL(t, 0, 1)
			if rec.LastSeq != seqBefore {
				t.Fatalf("backup recovered at seq %d, want %d", rec.LastSeq, seqBefore)
			}
			if !rec.FromSnapshot {
				t.Fatal("backup recovery ignored its snapshot")
			}
			f.probeAll()
			f.requireFullRotation(t)
			runBatch(t, ref, f.src, queries)

			// Scenario 2: the primary dies mid-insert-batch (the write fails
			// over to a promoted backup inside the batch), then restarts from
			// its WAL. Its recovered history is a prefix of the new
			// primary's — same ops, same sequences — so replay reconciles it
			// as a backup with zero duplicate applies.
			f.quiesce()
			faultInsertBatch(t, db, f.replicatedFleet, 2100, func() { f.net.kill(replicaName(0, 0)) })
			st := f.clients[0].FleetStatus()
			if st.Primary == replicaName(0, 0) {
				t.Fatalf("dead primary still leads shard 0: %+v", st)
			}
			f.quiesce()
			runBatch(t, ref, f.src, queries)
			f.restartFromWAL(t, 0, 0)
			f.probeAll()
			f.probeAll() // first round may only demote the stale restartee
			f.requireFullRotation(t)
			runBatch(t, ref, f.src, queries)

			// Scenario 3: the whole of shard group 0 crashes at once — no
			// survivor holds the data in memory — and every replica restarts
			// from disk. The group re-elects, takes writes again, and the
			// topology stays byte-identical.
			f.quiesce()
			for rep := 0; rep < replicas; rep++ {
				f.net.kill(replicaName(0, rep))
			}
			for rep := 0; rep < replicas; rep++ {
				f.restartFromWAL(t, 0, rep)
			}
			f.probeAll()
			faultInsertBatch(t, db, f.replicatedFleet, 2200, nil)
			f.quiesce()
			f.probeAll()
			f.requireFullRotation(t)

			// Recovery stats made it to the server surface.
			for rep := 0; rep < replicas; rep++ {
				ws, ok := f.srvs[0][rep].WALStats()
				if !ok {
					t.Fatalf("replica (0,%d) lost its WAL", rep)
				}
				if ws.RecoveredSeq == 0 {
					t.Fatalf("replica (0,%d) recovered nothing: %+v", rep, ws)
				}
			}

			// Final pass including probes that only exist post-insert.
			queries = append(queries,
				Query{SQL: "SELECT title FROM movie WHERE movie_id = 2205"},
				Query{SQL: "SELECT COUNT(*) FROM movie WHERE genre = 'noir' AND year > 1969"},
				Query{SQL: `SELECT movie.title, cast_info.role FROM movie
					JOIN cast_info ON cast_info.movie_id = movie.movie_id
					WHERE cast_info.cast_id >= 2000 ORDER BY cast_info.cast_id`, TotalOrder: true},
			)
			runBatch(t, ref, f.src, queries)
		})
	}
}

// serverSeq reads a replica's applied sequence straight off the server.
func (f *durableFleet) serverSeq(si, rep int) uint64 {
	_, _, seq := f.srvs[si][rep].ReplicationStatus()
	return seq
}
