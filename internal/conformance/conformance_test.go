package conformance

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/relational"
	"repro/internal/shard"
	"repro/internal/wrapper"
)

// conformanceDB builds the differential fixture: movie is large enough to
// cross the planner's lazy-index threshold on the reference side, person is
// small, cast_info carries NULL foreign keys, and titles share vocabulary
// with person names so MATCH/LIKE predicates hit both.
func conformanceDB(t testing.TB) *relational.Database {
	t.Helper()
	s := relational.NewSchema()
	add := func(ts *relational.TableSchema) {
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	add(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString, NotNull: true},
			{Name: "year", Type: relational.TypeInt},
			{Name: "rating", Type: relational.TypeFloat},
			{Name: "genre", Type: relational.TypeString},
		},
		PrimaryKey: "movie_id",
	})
	add(&relational.TableSchema{
		Name: "person",
		Columns: []relational.Column{
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true},
		},
		PrimaryKey: "person_id",
	})
	add(&relational.TableSchema{
		Name: "cast_info",
		Columns: []relational.Column{
			{Name: "cast_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt},
			{Name: "person_id", Type: relational.TypeInt},
			{Name: "role", Type: relational.TypeString},
		},
		PrimaryKey: "cast_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
			{Column: "person_id", RefTable: "person", RefColumn: "person_id"},
		},
	})
	db := relational.MustNewDatabase("conformance", s)
	rng := rand.New(rand.NewSource(31))
	genres := []string{"drama", "comedy", "thriller", "noir"}
	words := []string{"dark", "river", "storm", "night", "golden", "silent", "iron", "last"}
	I, F, S, N := relational.Int, relational.Float, relational.String_, relational.Null
	for i := 1; i <= 350; i++ {
		title := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		year := relational.Value(I(int64(1960 + rng.Intn(60))))
		if rng.Intn(10) == 0 {
			year = N()
		}
		db.Insert("movie", relational.Row{
			I(int64(i)), S(title), year, F(float64(rng.Intn(100)) / 10), S(genres[rng.Intn(len(genres))]),
		})
	}
	for i := 1; i <= 120; i++ {
		db.Insert("person", relational.Row{I(int64(i)), S(fmt.Sprintf("p%d %s", i, words[rng.Intn(len(words))]))})
	}
	roles := []string{"actor", "director", "writer"}
	for i := 1; i <= 800; i++ {
		mid := relational.Value(I(int64(1 + rng.Intn(350))))
		pid := relational.Value(I(int64(1 + rng.Intn(120))))
		role := relational.Value(S(roles[rng.Intn(len(roles))]))
		if rng.Intn(8) == 0 {
			mid = N()
		}
		if rng.Intn(8) == 0 {
			pid = N()
		}
		if rng.Intn(10) == 0 {
			role = N()
		}
		db.Insert("cast_info", relational.Row{I(int64(i)), mid, pid, role})
	}
	return db
}

// tableCases pins one query per shape the execution layer distinguishes:
// point, range, IN, MATCH/LIKE, 2–4-way joins (reordered, LEFT,
// self-join), ORDER BY/LIMIT/OFFSET, aggregation, DISTINCT, and the error
// shapes both sides must reject alike.
func tableCases() []Query {
	return []Query{
		{SQL: "SELECT * FROM movie", TotalOrder: false},
		{SQL: "SELECT * FROM movie WHERE movie_id = 17"},
		{SQL: "SELECT * FROM movie WHERE movie_id = -5"},
		{SQL: "SELECT title FROM movie WHERE genre = 'noir' ORDER BY movie_id", TotalOrder: true},
		{SQL: "SELECT title FROM movie WHERE year IS NULL ORDER BY movie_id", TotalOrder: true},
		{SQL: "SELECT title FROM movie WHERE year = NULL"},
		{SQL: "SELECT title FROM movie WHERE year BETWEEN 1971 AND 1984 ORDER BY movie_id", TotalOrder: true},
		{SQL: "SELECT title FROM movie WHERE year > 1990 AND year <= 2005 AND rating > 5"},
		{SQL: "SELECT title FROM movie WHERE year BETWEEN 1990 AND 1970"},
		{SQL: "SELECT title FROM movie WHERE movie_id IN (3, 3, 700, NULL, 42) ORDER BY movie_id", TotalOrder: true},
		{SQL: "SELECT title FROM movie WHERE movie_id IN (NULL)"},
		{SQL: "SELECT title FROM movie WHERE genre IN ('noir', 'comedy')"},
		{SQL: "SELECT title FROM movie WHERE title MATCH 'dark'"},
		{SQL: "SELECT title FROM movie WHERE title MATCH 'dark river' ORDER BY movie_id", TotalOrder: true},
		{SQL: "SELECT title FROM movie WHERE title LIKE '%storm%'"},
		{SQL: "SELECT title FROM movie ORDER BY year DESC, title, movie_id", TotalOrder: true},
		{SQL: "SELECT title FROM movie ORDER BY movie_id LIMIT 5 OFFSET 2", TotalOrder: true},
		{SQL: "SELECT title FROM movie ORDER BY year LIMIT 5"}, // ties: count-compare only
		{SQL: "SELECT title FROM movie WHERE genre = 'drama' ORDER BY movie_id LIMIT 200 OFFSET 190", TotalOrder: true},
		{SQL: "SELECT title FROM movie LIMIT 0"},
		{SQL: "SELECT year AS y FROM movie WHERE genre = 'drama' ORDER BY y, movie_id", TotalOrder: true},
		{SQL: `SELECT movie.title, cast_info.role FROM movie
			JOIN cast_info ON cast_info.movie_id = movie.movie_id
			ORDER BY cast_info.cast_id`, TotalOrder: true},
		{SQL: `SELECT person.name, movie.title FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id
			WHERE cast_info.role = 'director' ORDER BY cast_info.cast_id`, TotalOrder: true},
		{SQL: `SELECT movie.title, person.name FROM cast_info
			JOIN movie ON movie.movie_id = cast_info.movie_id
			JOIN person ON person.person_id = cast_info.person_id
			WHERE person.person_id = 11 ORDER BY cast_info.cast_id`, TotalOrder: true},
		{SQL: `SELECT person.name, m2.title FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id
			JOIN movie m2 ON m2.movie_id = cast_info.movie_id
			WHERE movie.year BETWEEN 1980 AND 1995 AND person.person_id IN (5, 9, 13)
			ORDER BY cast_info.cast_id`, TotalOrder: true},
		{SQL: `SELECT movie.title, cast_info.role FROM movie
			LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
			ORDER BY movie.movie_id, cast_info.cast_id`, TotalOrder: true},
		{SQL: `SELECT movie.title FROM movie
			LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
			WHERE cast_info.role IS NULL ORDER BY movie.movie_id, cast_info.cast_id`, TotalOrder: true},
		{SQL: `SELECT person.name FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id AND cast_info.cast_id > 100
			WHERE person.name LIKE 'p1%' ORDER BY cast_info.cast_id`, TotalOrder: true},
		{SQL: `SELECT movie.title FROM movie
			JOIN cast_info ON cast_info.movie_id = movie.movie_id
			WHERE movie.movie_id + 1 > cast_info.person_id AND movie.genre = 'drama'`},
		{SQL: `SELECT m1.title FROM movie m1
			JOIN movie m2 ON m1.year < m2.year
			WHERE m1.movie_id = 9 AND m2.genre = 'comedy' ORDER BY m2.movie_id`, TotalOrder: true},
		{SQL: `SELECT cast_info.role, COUNT(*) FROM movie
			JOIN cast_info ON cast_info.movie_id = movie.movie_id
			WHERE movie.genre = 'drama' GROUP BY cast_info.role ORDER BY cast_info.role`},
		{SQL: "SELECT COUNT(*), MIN(year), MAX(year) FROM movie WHERE genre = 'noir'"},
		// Partial-aggregate pushdown shapes: global and grouped integer
		// aggregates (exactly decomposable), empty groups, NULL group keys,
		// pruned-to-one-shard and pruned-to-zero-shards aggregates, aliased
		// aggregate order keys. (Float SUM/AVG is excluded by design: its
		// answer depends on summation order even between the gather path and
		// a single scan.)
		{SQL: "SELECT COUNT(*) FROM movie"},
		{SQL: "SELECT COUNT(year), SUM(year), AVG(year) FROM movie WHERE genre = 'drama'"},
		{SQL: "SELECT COUNT(*), SUM(movie_id) FROM movie WHERE year > 2100"},
		{SQL: "SELECT COUNT(*) FROM movie WHERE movie_id = 17"},
		{SQL: "SELECT COUNT(*) FROM movie WHERE movie_id IN (NULL)"},
		{SQL: "SELECT genre, COUNT(*), MIN(year), MAX(year) FROM movie GROUP BY genre ORDER BY genre", TotalOrder: true},
		{SQL: "SELECT year, COUNT(*) FROM movie GROUP BY year ORDER BY year", TotalOrder: true},
		{SQL: "SELECT year, COUNT(*) AS c FROM movie GROUP BY year ORDER BY c DESC, year", TotalOrder: true},
		{SQL: "SELECT genre, AVG(year) FROM movie WHERE year IS NOT NULL GROUP BY genre ORDER BY genre", TotalOrder: true},
		{SQL: "SELECT genre FROM movie GROUP BY genre ORDER BY genre LIMIT 2 OFFSET 1", TotalOrder: true},
		{SQL: "SELECT role, COUNT(*) FROM cast_info GROUP BY role ORDER BY role", TotalOrder: true},
		{SQL: "SELECT genre, COUNT(*) FROM movie GROUP BY genre HAVING COUNT(*) > 40 ORDER BY genre", TotalOrder: true},
		{SQL: "SELECT DISTINCT genre FROM movie WHERE year > 1990 ORDER BY genre", TotalOrder: true},
		{SQL: "SELECT DISTINCT genre, year FROM movie WHERE year > 2010"},
		// Columnar-encoding shapes: wide rows (every column of a 3-way join),
		// a low-cardinality projection (dictionary), sorted and constant
		// columns (run-length). The remote suites run these through both the
		// v2 columnar frames and the pinned-v1 row frames; either way the
		// bytes must match the reference.
		{SQL: `SELECT * FROM movie
			JOIN cast_info ON cast_info.movie_id = movie.movie_id
			JOIN person ON person.person_id = cast_info.person_id
			ORDER BY cast_info.cast_id`, TotalOrder: true},
		{SQL: "SELECT genre FROM movie ORDER BY genre, movie_id", TotalOrder: true},
		{SQL: "SELECT movie_id, year FROM movie ORDER BY year, movie_id"}, // NULL years tie: multiset compare
		{SQL: "SELECT genre, title FROM movie WHERE genre = 'noir' ORDER BY movie_id", TotalOrder: true},
		{SQL: "SELECT movie.genre, cast_info.role FROM movie JOIN cast_info ON cast_info.movie_id = movie.movie_id"},
		// Error parity: both sides must reject, neither may half-answer.
		{SQL: "SELECT nosuch FROM movie WHERE movie_id = 3"},
		{SQL: "SELECT title FROM movie WHERE nosuch = 1"},
		{SQL: "SELECT title FROM movie ORDER BY nosuch"},
	}
}

// fuzzCases is the seeded generator: random predicate stacks over every
// FROM shape, with total-order suffixes (every table's PK) so most cases
// compare positionally, byte for byte.
func fuzzCases(seed int64, n int) []Query {
	rng := rand.New(rand.NewSource(seed))
	type shape struct {
		from  string
		order string // total order: all PKs of the shape
		sel   string
	}
	shapes := []shape{
		{"FROM movie", "movie.movie_id", "SELECT movie.title, movie.year"},
		{"FROM movie JOIN cast_info ON cast_info.movie_id = movie.movie_id",
			"cast_info.cast_id", "SELECT movie.title, cast_info.role"},
		{"FROM movie LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id",
			"movie.movie_id, cast_info.cast_id", "SELECT movie.title, cast_info.role"},
		{`FROM person JOIN cast_info ON cast_info.person_id = person.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id`,
			"cast_info.cast_id", "SELECT person.name, movie.title"},
		{`FROM person LEFT JOIN cast_info ON cast_info.person_id = person.person_id
			LEFT JOIN movie ON movie.movie_id = cast_info.movie_id`,
			"person.person_id, cast_info.cast_id", "SELECT person.name, movie.title"},
		{`FROM cast_info JOIN movie ON movie.movie_id = cast_info.movie_id
			JOIN person ON person.person_id = cast_info.person_id`,
			"cast_info.cast_id", "SELECT movie.title, person.name"},
		{`FROM cast_info JOIN person ON person.person_id = cast_info.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id
			JOIN movie m2 ON m2.movie_id = cast_info.movie_id`,
			"cast_info.cast_id", "SELECT person.name, m2.title"},
	}
	moviePreds := []string{
		"movie.movie_id = %d",
		"movie.movie_id IN (%d, %d, NULL)",
		"movie.genre = 'drama'",
		"movie.year > %d",
		"movie.year BETWEEN 1975 AND 1995",
		"movie.year >= 1980 AND movie.year < 1990",
		"movie.year IS NULL",
		"movie.title MATCH 'river'",
		"movie.title LIKE '%%storm%%'",
		"(movie.year > %d OR movie.rating > 5)",
		"movie.genre IN ('drama', 'noir')",
		"NOT (movie.year > 1980)",
	}
	castPreds := []string{
		"cast_info.role = 'actor'",
		"cast_info.role IS NULL",
		"cast_info.cast_id = %d",
		"cast_info.person_id = %d",
		"cast_info.cast_id BETWEEN %d AND 600",
		"cast_info.person_id IN (%d, %d)",
		"movie.movie_id = cast_info.person_id",
	}
	out := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		sh := shapes[rng.Intn(len(shapes))]
		var preds []string
		for k := rng.Intn(4); k > 0; k-- {
			pool := moviePreds
			if strings.Contains(sh.from, "cast_info") && rng.Intn(2) == 0 {
				pool = castPreds
			}
			if !strings.Contains(sh.from, "movie") {
				pool = castPreds
			}
			p := pool[rng.Intn(len(pool))]
			if c := strings.Count(p, "%d"); c > 0 {
				args := make([]interface{}, c)
				for ai := range args {
					args[ai] = rng.Intn(420)
				}
				p = fmt.Sprintf(p, args...)
			}
			preds = append(preds, p)
		}
		q := sh.sel + " " + sh.from
		if len(preds) > 0 {
			q += " WHERE " + strings.Join(preds, " AND ")
		}
		total := false
		switch rng.Intn(4) {
		case 0:
			q += " ORDER BY " + sh.order
			total = true
		case 1:
			q += " ORDER BY " + sh.order
			q += fmt.Sprintf(" LIMIT %d OFFSET %d", 1+rng.Intn(12), rng.Intn(4))
			total = true
		case 2:
			q = strings.Replace(q, "SELECT ", "SELECT DISTINCT ", 1)
		}
		out = append(out, Query{SQL: q, TotalOrder: total})
	}
	return out
}

// runBatch fans a query batch over concurrent workers against one
// (reference, candidate) pair.
func runBatch(t *testing.T, ref, cand wrapper.Source, qs []Query) {
	t.Helper()
	const workers = 4
	errc := make(chan error, len(qs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(qs); i += workers {
				if err := Check(ref, cand, qs[i]); err != nil {
					errc <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// insertRound appends one batch of rows to the reference database and the
// sharded source alike: fresh movies, casts referencing both old and new
// rows, NULL-FK casts included. Inserts are a population-phase operation,
// so the round runs strictly between query batches.
func insertRound(t *testing.T, db *relational.Database, src *shard.ShardedSource, round int) {
	t.Helper()
	I, S, N := relational.Int, relational.String_, relational.Null
	base := int64(1000 + 100*round)
	apply := func(table string, row relational.Row) {
		if err := db.Insert(table, row.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := src.Insert(table, row.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 12; i++ {
		apply("movie", relational.Row{
			I(base + i), S(fmt.Sprintf("sequel storm %d", base+i)), I(1960 + (base+i)%60),
			relational.Float(float64(i) / 2), S("drama"),
		})
	}
	for i := int64(0); i < 20; i++ {
		mid := relational.Value(I(base + i%12))
		if i%7 == 0 {
			mid = N()
		}
		apply("cast_info", relational.Row{I(base + i), mid, I(1 + i%120), S("actor")})
	}
}

// TestConformanceSharded is the differential suite: every query shape
// against FullAccessSource and ShardedSource at 1, 3 and 7 shards, with
// concurrent query batches and interleaved insert rounds. Run it under the
// race detector via `make conformance`.
func TestConformanceSharded(t *testing.T) {
	for _, shards := range []int{1, 3, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			db := conformanceDB(t)
			ref := wrapper.NewFullAccessSource(db)
			parts, err := shard.Partition(db, shards)
			if err != nil {
				t.Fatal(err)
			}
			src, err := shard.New(db.Name, parts, shard.Options{})
			if err != nil {
				t.Fatal(err)
			}
			queries := append(tableCases(), fuzzCases(97+int64(shards), 120)...)
			for round := 0; round < 3; round++ {
				runBatch(t, ref, src, queries)
				insertRound(t, db, src, round)
			}
			// Final pass over the fully mutated instance, plus probes that
			// target rows that only exist post-insert.
			queries = append(queries,
				Query{SQL: "SELECT title FROM movie WHERE movie_id = 1105"},
				Query{SQL: "SELECT title FROM movie WHERE title MATCH 'sequel' ORDER BY movie_id", TotalOrder: true},
				Query{SQL: `SELECT person.name FROM person
					JOIN cast_info ON cast_info.person_id = person.person_id
					WHERE cast_info.cast_id > 1000 ORDER BY cast_info.cast_id`, TotalOrder: true},
			)
			runBatch(t, ref, src, queries)
		})
	}
}

// TestConformanceRegisteredBackends sweeps every registered backend kind
// through the table-driven cases — a new backend registered with the
// wrapper is automatically held to the reference semantics.
func TestConformanceRegisteredBackends(t *testing.T) {
	for _, kind := range wrapper.BackendKinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			db := conformanceDB(t)
			ref := wrapper.NewFullAccessSource(db)
			cand, err := wrapper.OpenBackend(kind, db)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range tableCases() {
				if err := Check(ref, cand, q); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// exactColumnStats recomputes one column's summary by a plain scan of the
// reference table — deliberately independent of the Stats code path it
// checks against.
func exactColumnStats(tbl *relational.Table, column string) (rows, nulls, distinct int, min, max relational.Value) {
	ord := tbl.Schema.ColumnIndex(column)
	seen := map[string]struct{}{}
	for _, row := range tbl.Rows() {
		rows++
		v := row[ord]
		if v.IsNull() {
			nulls++
			continue
		}
		seen[v.Key()] = struct{}{}
		if min.IsNull() || relational.Compare(v, min) < 0 {
			min = v
		}
		if max.IsNull() || relational.Compare(v, max) > 0 {
			max = v
		}
	}
	distinct = len(seen)
	return
}

// checkInterleavedStats asserts the candidate's (delta-maintained, shard-
// merged) statistics against a from-scratch scan of the mutated reference:
// Rows, NullCount, Min and Max must be exact — a post-insert snapshot that
// still reports the pre-insert extrema is precisely the staleness bug the
// maintenance budget must never allow — and Distinct must sit within the
// merge's documented bounds (at least the biggest partition's share, at
// most non-NULL rows; within insertedSlack of exact on one shard).
func checkInterleavedStats(t *testing.T, db *relational.Database, cand wrapper.StatisticsProvider, shards, insertedSlack int) {
	t.Helper()
	for table, columns := range map[string][]string{
		"movie":     {"movie_id", "year", "rating", "genre"},
		"cast_info": {"cast_id", "movie_id", "role"},
	} {
		for _, column := range columns {
			got, err := cand.ColumnStatistics(table, column)
			if err != nil {
				t.Fatalf("%s.%s: %v", table, column, err)
			}
			rows, nulls, distinct, min, max := exactColumnStats(db.Table(table), column)
			if got.Rows != rows || got.NullCount != nulls {
				t.Errorf("%s.%s: rows/nulls = %d/%d, want exact %d/%d", table, column, got.Rows, got.NullCount, rows, nulls)
			}
			if relational.Compare(got.Min, min) != 0 || relational.Compare(got.Max, max) != 0 {
				t.Errorf("%s.%s: min/max = %v/%v, want exact %v/%v (stale extrema past an insert)",
					table, column, got.Min, got.Max, min, max)
			}
			lo, hi := distinct/shards, rows-nulls
			if shards == 1 && distinct+insertedSlack < hi {
				hi = distinct + insertedSlack
			}
			if got.Distinct < lo || got.Distinct > hi {
				t.Errorf("%s.%s: distinct = %d, want within [%d, %d] of exact %d",
					table, column, got.Distinct, lo, hi, distinct)
			}
		}
	}
}

// TestConformanceInterleavedStats interleaves insert rounds with
// statistics checks at 1, 3 and 7 shards, in both maintenance modes: the
// delta-maintained snapshots must track the mutated instance exactly on
// rows/nulls/min/max and within bounds on distinct, and query results must
// be byte-identical to the rebuild-per-write baseline throughout.
func TestConformanceInterleavedStats(t *testing.T) {
	for _, incremental := range []bool{true, false} {
		name := "rebuild"
		if incremental {
			name = "incremental"
		}
		t.Run(name, func(t *testing.T) {
			defer relational.SetIncrementalMaintenance(relational.SetIncrementalMaintenance(incremental))
			for _, shards := range []int{1, 3, 7} {
				t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
					db := conformanceDB(t)
					ref := wrapper.NewFullAccessSource(db)
					parts, err := shard.Partition(db, shards)
					if err != nil {
						t.Fatal(err)
					}
					src, err := shard.New(db.Name, parts, shard.Options{})
					if err != nil {
						t.Fatal(err)
					}
					queries := tableCases()
					inserted := 0
					for round := 0; round < 3; round++ {
						// Warm the statistics so later rounds exercise the
						// delta path rather than a first-touch build.
						checkInterleavedStats(t, db, src, shards, inserted)
						insertRound(t, db, src, round)
						inserted += 12 // movies per round; cast_info grows by 20
						checkInterleavedStats(t, db, src, shards, inserted+8)
						runBatch(t, ref, src, queries)
					}
				})
			}
		})
	}
}
