package datasets

import (
	"math/rand"

	"repro/internal/relational"
)

// IMDBSchema returns the star-shaped movie schema: person and movie
// dimensions connected through cast_info, plus production companies. The
// shape follows the paper's characterization — "a simple star schema but
// contains millions of instances" — scaled down by Config.Scale.
func IMDBSchema() *relational.Schema {
	s := relational.NewSchema()

	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	must(s.AddTable(&relational.TableSchema{
		Name:        "person",
		Annotations: []string{"actor", "director", "people"},
		Columns: []relational.Column{
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true,
				Annotations: []string{"actor", "director", "star"}},
			{Name: "birth_year", Type: relational.TypeInt,
				Annotations: []string{"year", "born"}, Pattern: `(18|19|20)\d\d`},
			{Name: "gender", Type: relational.TypeString, Pattern: `m|f`},
		},
		PrimaryKey: "person_id",
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "movie",
		Annotations: []string{"film", "picture"},
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString, NotNull: true,
				Annotations: []string{"film", "name"}},
			{Name: "production_year", Type: relational.TypeInt,
				Annotations: []string{"year", "released"}, Pattern: `(18|19|20)\d\d`},
			{Name: "genre", Type: relational.TypeString,
				Annotations: []string{"category", "kind"},
				Pattern:     "drama|comedy|thriller|horror|romance|action|documentary|animation|western|fantasy|mystery|noir"},
			{Name: "rating", Type: relational.TypeFloat,
				Annotations: []string{"score", "stars"}},
		},
		PrimaryKey: "movie_id",
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "cast_info",
		Annotations: []string{"cast", "credits", "plays"},
		Columns: []relational.Column{
			{Name: "cast_id", Type: relational.TypeInt, NotNull: true},
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "role", Type: relational.TypeString,
				Annotations: []string{"part", "job"},
				Pattern:     "actor|actress|director|producer|writer|composer|editor"},
		},
		PrimaryKey: "cast_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "person_id", RefTable: "person", RefColumn: "person_id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
		},
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "company",
		Annotations: []string{"studio", "producer"},
		Columns: []relational.Column{
			{Name: "company_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true,
				Annotations: []string{"studio"}},
			{Name: "country", Type: relational.TypeString,
				Annotations: []string{"nation"}},
		},
		PrimaryKey: "company_id",
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "award",
		Annotations: []string{"prize", "honor", "won"},
		Columns: []relational.Column{
			{Name: "award_id", Type: relational.TypeInt, NotNull: true},
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "category", Type: relational.TypeString,
				Annotations: []string{"kind"},
				Pattern:     "best actor|best actress|best director|best picture|best score"},
			{Name: "year", Type: relational.TypeInt,
				Annotations: []string{"date"}, Pattern: `(19|20)\d\d`},
		},
		PrimaryKey: "award_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "person_id", RefTable: "person", RefColumn: "person_id"},
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
		},
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "movie_company",
		Annotations: []string{"produced", "production"},
		Columns: []relational.Column{
			{Name: "mc_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "company_id", Type: relational.TypeInt, NotNull: true},
		},
		PrimaryKey: "mc_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
			{Column: "company_id", RefTable: "company", RefColumn: "company_id"},
		},
	}))
	return s
}

// IMDB generates the populated movie database. Base sizes at Scale 1:
// 300 movies, 200 people, ~900 cast rows, 40 companies, and a deliberately
// sparse award table (~10 rows) that offers an alternative — but mostly
// empty — join path between person and movie, exercising the MI-based edge
// weighting of the backward module (experiment E8b).
func IMDB(cfg Config) *relational.Database {
	r := rand.New(rand.NewSource(cfg.Seed))
	db := relational.MustNewDatabase("imdb", IMDBSchema())

	numMovies := cfg.scale(300)
	numPersons := cfg.scale(200)
	numCompanies := 40
	numAwards := cfg.scale(300) / 30

	for i := 1; i <= numPersons; i++ {
		var birth relational.Value
		if r.Intn(10) > 0 { // occasional NULL birth years
			birth = relational.Int(int64(1920 + r.Intn(85)))
		}
		gender := "m"
		if r.Intn(2) == 0 {
			gender = "f"
		}
		mustInsert(db, "person", relational.Row{
			relational.Int(int64(i)),
			relational.String_(personName(r)),
			birth,
			relational.String_(gender),
		})
	}
	for i := 1; i <= numMovies; i++ {
		mustInsert(db, "movie", relational.Row{
			relational.Int(int64(i)),
			relational.String_(movieTitle(r)),
			relational.Int(int64(1950 + r.Intn(65))),
			relational.String_(pick(r, genres)),
			relational.Float(float64(r.Intn(80)+20) / 10),
		})
	}
	for i := 1; i <= numCompanies; i++ {
		mustInsert(db, "company", relational.Row{
			relational.Int(int64(i)),
			relational.String_(pick(r, lastNames) + " " + pick(r, []string{"pictures", "studios", "films", "entertainment"})),
			relational.String_(pick(r, countryNames)),
		})
	}
	castID := 0
	for m := 1; m <= numMovies; m++ {
		n := 2 + r.Intn(4)
		for j := 0; j < n; j++ {
			castID++
			mustInsert(db, "cast_info", relational.Row{
				relational.Int(int64(castID)),
				relational.Int(int64(1 + r.Intn(numPersons))),
				relational.Int(int64(m)),
				relational.String_(pick(r, roles)),
			})
		}
	}
	mcID := 0
	for m := 1; m <= numMovies; m++ {
		n := 1 + r.Intn(2)
		for j := 0; j < n; j++ {
			mcID++
			mustInsert(db, "movie_company", relational.Row{
				relational.Int(int64(mcID)),
				relational.Int(int64(m)),
				relational.Int(int64(1 + r.Intn(numCompanies))),
			})
		}
	}
	categories := []string{"best actor", "best actress", "best director", "best picture", "best score"}
	for i := 1; i <= numAwards; i++ {
		mustInsert(db, "award", relational.Row{
			relational.Int(int64(i)),
			relational.Int(int64(1 + r.Intn(numPersons))),
			relational.Int(int64(1 + r.Intn(numMovies))),
			relational.String_(categories[r.Intn(len(categories))]),
			relational.Int(int64(1960 + r.Intn(55))),
		})
	}
	return db
}
