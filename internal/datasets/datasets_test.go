package datasets

import (
	"testing"

	"repro/internal/relational"
)

func TestIMDBIntegrity(t *testing.T) {
	db := IMDB(DefaultConfig())
	if err := db.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckForeignKeys(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"person", "movie", "cast_info", "company", "movie_company"} {
		if db.Table(name) == nil || db.Table(name).Len() == 0 {
			t.Fatalf("table %s missing or empty", name)
		}
	}
}

func TestMondialIntegrity(t *testing.T) {
	db := Mondial(DefaultConfig())
	if err := db.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckForeignKeys(); err != nil {
		t.Fatal(err)
	}
	// Mondial's distinguishing property: many tables, many join paths.
	if got := len(db.Schema.Tables()); got < 10 {
		t.Fatalf("mondial has %d tables, want >= 10", got)
	}
	if got := len(db.Schema.JoinEdges()); got < 10 {
		t.Fatalf("mondial has %d FK edges, want >= 10", got)
	}
}

func TestDBLPIntegrity(t *testing.T) {
	db := DBLP(DefaultConfig())
	if err := db.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckForeignKeys(); err != nil {
		t.Fatal(err)
	}
	// Authorship must reference both sides.
	authored := db.Table("authored")
	if authored.Len() < db.Table("paper").Len() {
		t.Fatal("every paper should have at least one author row")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 99, Scale: 1}
	a, b := IMDB(cfg), IMDB(cfg)
	if a.TotalRows() != b.TotalRows() {
		t.Fatalf("row counts differ: %d vs %d", a.TotalRows(), b.TotalRows())
	}
	ta, tb := a.Table("movie"), b.Table("movie")
	for i := 0; i < ta.Len(); i++ {
		ra, rb := ta.Row(i), tb.Row(i)
		for c := range ra {
			if relational.Compare(ra[c], rb[c]) != 0 && !(ra[c].IsNull() && rb[c].IsNull()) {
				t.Fatalf("row %d col %d differ: %v vs %v", i, c, ra[c], rb[c])
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := IMDB(Config{Seed: 1, Scale: 1})
	b := IMDB(Config{Seed: 2, Scale: 1})
	same := true
	ta, tb := a.Table("movie"), b.Table("movie")
	for i := 0; i < ta.Len() && i < tb.Len(); i++ {
		if ta.Row(i)[1].AsString() != tb.Row(i)[1].AsString() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical movie titles")
	}
}

func TestScaleGrowsInstance(t *testing.T) {
	small := IMDB(Config{Seed: 5, Scale: 1})
	big := IMDB(Config{Seed: 5, Scale: 3})
	if big.Table("movie").Len() != 3*small.Table("movie").Len() {
		t.Fatalf("scale 3 movies = %d, want 3×%d", big.Table("movie").Len(), small.Table("movie").Len())
	}
	if big.TotalRows() <= small.TotalRows() {
		t.Fatal("scale must grow the instance")
	}
	// Scale <= 0 behaves like 1.
	def := IMDB(Config{Seed: 5, Scale: 0})
	if def.Table("movie").Len() != small.Table("movie").Len() {
		t.Fatal("scale 0 must default to 1")
	}
}

func TestCrossTableAmbiguity(t *testing.T) {
	// The generators must plant surname tokens inside movie titles so
	// keyword queries are ambiguous (QUEST's target regime).
	db := IMDB(Config{Seed: 42, Scale: 2})
	movie := db.Table("movie")
	titleOrd := movie.Schema.ColumnIndex("title")
	surnames := map[string]bool{}
	for _, n := range lastNames {
		surnames[n] = true
	}
	found := false
	for _, row := range movie.Rows() {
		for _, tok := range splitTokens(row[titleOrd].AsString()) {
			if surnames[tok] {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no surname token found in any movie title; ambiguity generator broken")
	}
}

func splitTokens(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func TestMondialStripedProvinces(t *testing.T) {
	// City province FKs must point at provinces of the same country (the
	// striping invariant the generator relies on).
	db := Mondial(DefaultConfig())
	city := db.Table("city")
	prov := db.Table("province")
	cOrd := city.Schema.ColumnIndex("country_id")
	pOrd := city.Schema.ColumnIndex("province_id")
	provCountry := prov.Schema.ColumnIndex("country_id")
	for i, row := range city.Rows() {
		if row[pOrd].IsNull() {
			continue
		}
		provRow, ok := prov.LookupPK(row[pOrd])
		if !ok {
			t.Fatalf("city %d: dangling province", i)
		}
		if provRow[provCountry].AsInt() != row[cOrd].AsInt() {
			t.Fatalf("city %d: province in country %d, city in %d",
				i, provRow[provCountry].AsInt(), row[cOrd].AsInt())
		}
	}
}

func TestDBLPCitationsPointBackwards(t *testing.T) {
	db := DBLP(DefaultConfig())
	cites := db.Table("cites")
	citing := cites.Schema.ColumnIndex("citing")
	cited := cites.Schema.ColumnIndex("cited")
	for i, row := range cites.Rows() {
		if row[cited].AsInt() >= row[citing].AsInt() {
			t.Fatalf("citation %d points forward: %d cites %d",
				i, row[citing].AsInt(), row[cited].AsInt())
		}
	}
}

func TestSchemasCarryAnnotationsAndPatterns(t *testing.T) {
	// The metadata wrapper depends on enriched schemas; every dataset must
	// annotate at least some columns and provide value patterns.
	for name, schema := range map[string]*relational.Schema{
		"imdb":    IMDBSchema(),
		"mondial": MondialSchema(),
		"dblp":    DBLPSchema(),
	} {
		annotated, patterned := 0, 0
		for _, ts := range schema.Tables() {
			for _, c := range ts.Columns {
				if len(c.Annotations) > 0 {
					annotated++
				}
				if c.Pattern != "" {
					patterned++
				}
			}
		}
		if annotated < 3 {
			t.Errorf("%s: only %d annotated columns", name, annotated)
		}
		if patterned < 1 {
			t.Errorf("%s: no value patterns", name)
		}
	}
}
