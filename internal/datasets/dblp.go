package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/relational"
)

// DBLPSchema returns the bibliography schema: "many instances in a
// non-trivial schema" — authors, papers, venues linked through an
// authorship relation and a citation relation.
func DBLPSchema() *relational.Schema {
	s := relational.NewSchema()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	must(s.AddTable(&relational.TableSchema{
		Name:        "author",
		Annotations: []string{"person", "writer", "researcher"},
		Columns: []relational.Column{
			{Name: "author_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true,
				Annotations: []string{"person", "writer"}},
			{Name: "affiliation", Type: relational.TypeString,
				Annotations: []string{"university", "institution"}},
		},
		PrimaryKey: "author_id",
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "venue",
		Annotations: []string{"conference", "journal"},
		Columns: []relational.Column{
			{Name: "venue_id", Type: relational.TypeInt, NotNull: true},
			// The venue vocabulary is exposed as a value pattern: Deep Web
			// bibliography forms present venues as picklists, so the
			// metadata-only wrapper legitimately knows the admissible values.
			{Name: "name", Type: relational.TypeString, NotNull: true,
				Annotations: []string{"conference", "journal"},
				Pattern:     "vldb|sigmod|icde|edbt|cikm|kdd|www|sigir|pods|icdt|er|dexa|dasfaa|ssdbm|tods|tkde|vldbj|is|dke|jacm"},
			{Name: "type", Type: relational.TypeString, Pattern: `conference|journal`},
		},
		PrimaryKey: "venue_id",
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "paper",
		Annotations: []string{"article", "publication"},
		Columns: []relational.Column{
			{Name: "paper_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString, NotNull: true,
				Annotations: []string{"article", "name"}},
			{Name: "year", Type: relational.TypeInt,
				Annotations: []string{"date", "published"}, Pattern: `(19|20)\d\d`},
			{Name: "venue_id", Type: relational.TypeInt},
			{Name: "pages", Type: relational.TypeInt},
		},
		PrimaryKey: "paper_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "venue_id", RefTable: "venue", RefColumn: "venue_id"},
		},
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "authored",
		Annotations: []string{"is_author", "wrote", "authorship"},
		Columns: []relational.Column{
			{Name: "authored_id", Type: relational.TypeInt, NotNull: true},
			{Name: "author_id", Type: relational.TypeInt, NotNull: true},
			{Name: "paper_id", Type: relational.TypeInt, NotNull: true},
			{Name: "position", Type: relational.TypeInt},
		},
		PrimaryKey: "authored_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "author_id", RefTable: "author", RefColumn: "author_id"},
			{Column: "paper_id", RefTable: "paper", RefColumn: "paper_id"},
		},
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "cites",
		Annotations: []string{"citation", "references"},
		Columns: []relational.Column{
			{Name: "cite_id", Type: relational.TypeInt, NotNull: true},
			{Name: "citing", Type: relational.TypeInt, NotNull: true},
			{Name: "cited", Type: relational.TypeInt, NotNull: true},
		},
		PrimaryKey: "cite_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "citing", RefTable: "paper", RefColumn: "paper_id"},
			{Column: "cited", RefTable: "paper", RefColumn: "paper_id"},
		},
	}))
	return s
}

// DBLP generates the populated bibliography database. Base sizes at
// Scale 1: 250 authors, 400 papers, ~1000 authorship rows, citations ~2 per
// paper.
func DBLP(cfg Config) *relational.Database {
	r := rand.New(rand.NewSource(cfg.Seed + 2))
	db := relational.MustNewDatabase("dblp", DBLPSchema())

	numAuthors := cfg.scale(250)
	numPapers := cfg.scale(400)

	affiliations := []string{
		"university of modena", "university of trento", "university of zaragoza",
		"mit", "stanford university", "eth zurich", "tu munich",
		"university of tokyo", "tsinghua university", "epfl",
	}

	for i := 1; i <= numAuthors; i++ {
		var aff relational.Value
		if r.Intn(4) > 0 {
			aff = relational.String_(pick(r, affiliations))
		}
		mustInsert(db, "author", relational.Row{
			relational.Int(int64(i)),
			relational.String_(personName(r)),
			aff,
		})
	}
	for i, v := range venueNames {
		vt := "conference"
		if i%4 == 3 {
			vt = "journal"
		}
		mustInsert(db, "venue", relational.Row{
			relational.Int(int64(i + 1)),
			relational.String_(v),
			relational.String_(vt),
		})
	}
	for i := 1; i <= numPapers; i++ {
		var venue relational.Value
		if r.Intn(12) > 0 {
			venue = relational.Int(int64(1 + r.Intn(len(venueNames))))
		}
		mustInsert(db, "paper", relational.Row{
			relational.Int(int64(i)),
			relational.String_(paperTitle(r)),
			relational.Int(int64(1985 + r.Intn(30))),
			venue,
			relational.Int(int64(6 + r.Intn(25))),
		})
	}
	authoredID := 0
	for p := 1; p <= numPapers; p++ {
		n := 1 + r.Intn(4)
		seen := map[int]bool{}
		for pos := 1; pos <= n; pos++ {
			a := 1 + r.Intn(numAuthors)
			if seen[a] {
				continue
			}
			seen[a] = true
			authoredID++
			mustInsert(db, "authored", relational.Row{
				relational.Int(int64(authoredID)),
				relational.Int(int64(a)),
				relational.Int(int64(p)),
				relational.Int(int64(pos)),
			})
		}
	}
	citeID := 0
	for p := 2; p <= numPapers; p++ {
		n := r.Intn(4)
		for j := 0; j < n; j++ {
			cited := 1 + r.Intn(p-1) // cite an earlier paper
			citeID++
			mustInsert(db, "cites", relational.Row{
				relational.Int(int64(citeID)),
				relational.Int(int64(p)),
				relational.Int(int64(cited)),
			})
		}
	}
	if err := db.CheckForeignKeys(); err != nil {
		panic(fmt.Sprintf("datasets: dblp integrity: %v", err))
	}
	return db
}
