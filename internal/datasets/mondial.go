package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/relational"
)

// MondialSchema returns the geography schema: few instances but "a very
// complex schema where tables are connected through many paths" — the
// property that stresses the backward module. Countries connect to cities,
// provinces, rivers, lakes, mountains, borders and organizations through
// multiple alternative join paths.
func MondialSchema() *relational.Schema {
	s := relational.NewSchema()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	must(s.AddTable(&relational.TableSchema{
		Name:        "country",
		Annotations: []string{"nation", "state"},
		Columns: []relational.Column{
			{Name: "country_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true,
				Annotations: []string{"nation"}},
			{Name: "capital", Type: relational.TypeString,
				Annotations: []string{"city", "seat"}},
			{Name: "population", Type: relational.TypeInt,
				Annotations: []string{"inhabitants"}, Pattern: `\d+`},
			{Name: "area", Type: relational.TypeFloat,
				Annotations: []string{"surface", "size"}},
		},
		PrimaryKey: "country_id",
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "province",
		Annotations: []string{"region", "district"},
		Columns: []relational.Column{
			{Name: "province_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true},
			{Name: "country_id", Type: relational.TypeInt, NotNull: true},
			{Name: "population", Type: relational.TypeInt, Pattern: `\d+`},
		},
		PrimaryKey: "province_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "country_id", RefTable: "country", RefColumn: "country_id"},
		},
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "city",
		Annotations: []string{"town", "municipality"},
		Columns: []relational.Column{
			{Name: "city_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true,
				Annotations: []string{"town"}},
			{Name: "country_id", Type: relational.TypeInt, NotNull: true},
			{Name: "province_id", Type: relational.TypeInt},
			{Name: "population", Type: relational.TypeInt,
				Annotations: []string{"inhabitants"}, Pattern: `\d+`},
		},
		PrimaryKey: "city_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "country_id", RefTable: "country", RefColumn: "country_id"},
			{Column: "province_id", RefTable: "province", RefColumn: "province_id"},
		},
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "river",
		Annotations: []string{"stream", "water"},
		Columns: []relational.Column{
			{Name: "river_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true},
			{Name: "length", Type: relational.TypeFloat,
				Annotations: []string{"km"}},
		},
		PrimaryKey: "river_id",
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "geo_river",
		Annotations: []string{"flows", "crosses"},
		Columns: []relational.Column{
			{Name: "gr_id", Type: relational.TypeInt, NotNull: true},
			{Name: "river_id", Type: relational.TypeInt, NotNull: true},
			{Name: "country_id", Type: relational.TypeInt, NotNull: true},
		},
		PrimaryKey: "gr_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "river_id", RefTable: "river", RefColumn: "river_id"},
			{Column: "country_id", RefTable: "country", RefColumn: "country_id"},
		},
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "lake",
		Annotations: []string{"water", "basin"},
		Columns: []relational.Column{
			{Name: "lake_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true},
			{Name: "depth", Type: relational.TypeFloat},
		},
		PrimaryKey: "lake_id",
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "geo_lake",
		Annotations: []string{"located"},
		Columns: []relational.Column{
			{Name: "gl_id", Type: relational.TypeInt, NotNull: true},
			{Name: "lake_id", Type: relational.TypeInt, NotNull: true},
			{Name: "country_id", Type: relational.TypeInt, NotNull: true},
		},
		PrimaryKey: "gl_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "lake_id", RefTable: "lake", RefColumn: "lake_id"},
			{Column: "country_id", RefTable: "country", RefColumn: "country_id"},
		},
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "mountain",
		Annotations: []string{"peak", "summit"},
		Columns: []relational.Column{
			{Name: "mountain_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true},
			{Name: "height", Type: relational.TypeFloat,
				Annotations: []string{"elevation", "altitude"}},
			{Name: "country_id", Type: relational.TypeInt},
		},
		PrimaryKey: "mountain_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "country_id", RefTable: "country", RefColumn: "country_id"},
		},
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "borders",
		Annotations: []string{"boundary", "neighbor"},
		Columns: []relational.Column{
			{Name: "border_id", Type: relational.TypeInt, NotNull: true},
			{Name: "country1", Type: relational.TypeInt, NotNull: true},
			{Name: "country2", Type: relational.TypeInt, NotNull: true},
			{Name: "length", Type: relational.TypeFloat},
		},
		PrimaryKey: "border_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "country1", RefTable: "country", RefColumn: "country_id"},
			{Column: "country2", RefTable: "country", RefColumn: "country_id"},
		},
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "organization",
		Annotations: []string{"union", "alliance"},
		Columns: []relational.Column{
			{Name: "org_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true},
			{Name: "abbreviation", Type: relational.TypeString,
				Annotations: []string{"acronym"}},
			{Name: "established", Type: relational.TypeInt,
				Annotations: []string{"year", "founded"}, Pattern: `(18|19|20)\d\d`},
		},
		PrimaryKey: "org_id",
	}))
	must(s.AddTable(&relational.TableSchema{
		Name:        "is_member",
		Annotations: []string{"membership", "belongs"},
		Columns: []relational.Column{
			{Name: "member_id", Type: relational.TypeInt, NotNull: true},
			{Name: "country_id", Type: relational.TypeInt, NotNull: true},
			{Name: "org_id", Type: relational.TypeInt, NotNull: true},
			{Name: "type", Type: relational.TypeString},
		},
		PrimaryKey: "member_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "country_id", RefTable: "country", RefColumn: "country_id"},
			{Column: "org_id", RefTable: "organization", RefColumn: "org_id"},
		},
	}))
	return s
}

// Mondial generates the populated geography database. Sizes are fixed (the
// real Mondial is small); Scale only multiplies cities.
func Mondial(cfg Config) *relational.Database {
	r := rand.New(rand.NewSource(cfg.Seed + 1))
	db := relational.MustNewDatabase("mondial", MondialSchema())

	numCountries := len(countryNames)
	for i := 1; i <= numCountries; i++ {
		mustInsert(db, "country", relational.Row{
			relational.Int(int64(i)),
			relational.String_(countryNames[i-1]),
			relational.String_(cityName(r)),
			relational.Int(int64(500000 + r.Intn(80000000))),
			relational.Float(float64(10000 + r.Intn(600000))),
		})
	}
	numProvinces := numCountries * 3
	for i := 1; i <= numProvinces; i++ {
		mustInsert(db, "province", relational.Row{
			relational.Int(int64(i)),
			relational.String_(pick(r, cityStems) + " " + pick(r, []string{"north", "south", "east", "west", "central"})),
			relational.Int(int64(1 + (i-1)%numCountries)),
			relational.Int(int64(100000 + r.Intn(5000000))),
		})
	}
	numCities := cfg.scale(150)
	for i := 1; i <= numCities; i++ {
		country := 1 + (i-1)%numCountries
		var prov relational.Value
		if r.Intn(5) > 0 {
			// A province of the same country (provinces are striped by
			// country: province p belongs to country 1+(p-1)%numCountries).
			p := country + numCountries*r.Intn(3)
			prov = relational.Int(int64(p))
		}
		mustInsert(db, "city", relational.Row{
			relational.Int(int64(i)),
			relational.String_(cityName(r)),
			relational.Int(int64(country)),
			prov,
			relational.Int(int64(10000 + r.Intn(3000000))),
		})
	}
	numRivers := len(riverStems)
	for i := 1; i <= numRivers; i++ {
		mustInsert(db, "river", relational.Row{
			relational.Int(int64(i)),
			relational.String_(riverStems[i-1]),
			relational.Float(float64(200 + r.Intn(2800))),
		})
	}
	grID := 0
	for riv := 1; riv <= numRivers; riv++ {
		n := 1 + r.Intn(4)
		seen := map[int]bool{}
		for j := 0; j < n; j++ {
			c := 1 + r.Intn(numCountries)
			if seen[c] {
				continue
			}
			seen[c] = true
			grID++
			mustInsert(db, "geo_river", relational.Row{
				relational.Int(int64(grID)),
				relational.Int(int64(riv)),
				relational.Int(int64(c)),
			})
		}
	}
	numLakes := 15
	for i := 1; i <= numLakes; i++ {
		mustInsert(db, "lake", relational.Row{
			relational.Int(int64(i)),
			relational.String_("lake " + pick(r, cityStems)),
			relational.Float(float64(20 + r.Intn(400))),
		})
	}
	glID := 0
	for lk := 1; lk <= numLakes; lk++ {
		glID++
		mustInsert(db, "geo_lake", relational.Row{
			relational.Int(int64(glID)),
			relational.Int(int64(lk)),
			relational.Int(int64(1 + r.Intn(numCountries))),
		})
	}
	numMountains := 25
	for i := 1; i <= numMountains; i++ {
		var c relational.Value
		if r.Intn(6) > 0 {
			c = relational.Int(int64(1 + r.Intn(numCountries)))
		}
		mustInsert(db, "mountain", relational.Row{
			relational.Int(int64(i)),
			relational.String_("mount " + pick(r, titleNouns)),
			relational.Float(float64(800 + r.Intn(4000))),
			c,
		})
	}
	borderID := 0
	for c1 := 1; c1 <= numCountries; c1++ {
		n := 1 + r.Intn(3)
		for j := 0; j < n; j++ {
			c2 := 1 + r.Intn(numCountries)
			if c2 == c1 {
				continue
			}
			borderID++
			mustInsert(db, "borders", relational.Row{
				relational.Int(int64(borderID)),
				relational.Int(int64(c1)),
				relational.Int(int64(c2)),
				relational.Float(float64(50 + r.Intn(2000))),
			})
		}
	}
	orgs := []struct{ name, abbr string }{
		{"european union", "eu"}, {"united nations", "un"},
		{"north atlantic treaty organization", "nato"},
		{"world trade organization", "wto"},
		{"organization for economic cooperation", "oecd"},
		{"council of europe", "coe"}, {"nordic council", "nc"},
		{"visegrad group", "v4"},
	}
	for i, o := range orgs {
		mustInsert(db, "organization", relational.Row{
			relational.Int(int64(i + 1)),
			relational.String_(o.name),
			relational.String_(o.abbr),
			relational.Int(int64(1900 + r.Intn(100))),
		})
	}
	memberID := 0
	for c := 1; c <= numCountries; c++ {
		n := 1 + r.Intn(4)
		seen := map[int]bool{}
		for j := 0; j < n; j++ {
			o := 1 + r.Intn(len(orgs))
			if seen[o] {
				continue
			}
			seen[o] = true
			memberID++
			mustInsert(db, "is_member", relational.Row{
				relational.Int(int64(memberID)),
				relational.Int(int64(c)),
				relational.Int(int64(o)),
				relational.String_(pick(r, []string{"member", "observer", "associate"})),
			})
		}
	}
	if err := db.CheckForeignKeys(); err != nil {
		panic(fmt.Sprintf("datasets: mondial integrity: %v", err))
	}
	return db
}
