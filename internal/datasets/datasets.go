// Package datasets builds the three demonstration databases of the paper as
// deterministic synthetic equivalents:
//
//   - IMDB: a simple star schema with many rows (movies, people, cast),
//   - Mondial: a complex, highly connected schema with few rows (countries,
//     cities, rivers, organizations, borders, ...),
//   - DBLP: a large instance over a non-trivial schema (authors, papers,
//     venues, authorship, citations).
//
// Substitution note (see DESIGN.md): the paper demos against live dumps of
// the real databases; those are not available offline, so these generators
// produce seeded pseudo-data with the same schema shapes, referential
// structure and — importantly for QUEST — controllable lexical ambiguity:
// tokens deliberately recur across tables (a person surname appearing
// inside movie titles, a country name inside organization names) so keyword
// queries genuinely have multiple plausible configurations.
package datasets

import (
	"fmt"
	"math/rand"

	"repro/internal/relational"
)

// Config controls generator size and determinism.
type Config struct {
	// Seed drives all pseudo-randomness; equal seeds give equal databases.
	Seed int64
	// Scale linearly multiplies the row counts of the scalable tables
	// (1 = the default "demo" size; benches sweep this).
	Scale int
}

// DefaultConfig is the demo-sized configuration.
func DefaultConfig() Config { return Config{Seed: 42, Scale: 1} }

func (c Config) scale(base int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	return base * s
}

// Word pools. Kept small on purpose: collisions across tables are what make
// keyword queries ambiguous, which is the regime QUEST is designed for.

var firstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "marco",
	"giulia", "luca", "sofia", "pierre", "claire", "hans", "greta", "akira",
	"yuki", "carlos", "lucia", "ivan", "olga", "lars", "ingrid",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "taylor", "moore", "jackson", "martin", "lee",
	"perez", "thompson", "white", "harris", "sanchez", "clark", "ramirez",
	"lewis", "robinson", "walker", "young", "allen", "king", "wright",
	"scott", "torres", "nguyen", "hill", "flores", "green", "adams",
	"nelson", "baker", "hall", "rivera", "campbell", "mitchell", "carter",
	"rossi", "ferrari", "russo", "bianchi", "romano", "colombo", "ricci",
	"marino", "greco", "bruno", "gallo", "conti", "deluca", "costa",
	"giordano", "mancini", "rizzo", "lombardi", "moretti", "spielberg",
	"scorsese", "kurosawa", "hitchcock", "kubrick", "fellini", "bergman",
}

var titleNouns = []string{
	"night", "city", "river", "dream", "shadow", "king", "garden", "star",
	"ocean", "mountain", "winter", "summer", "stone", "fire", "storm",
	"silence", "empire", "secret", "journey", "memory", "bridge", "island",
	"forest", "mirror", "castle", "desert", "harbor", "light", "thunder",
	"crystal", "phantom", "legend", "horizon", "labyrinth", "eclipse",
}

var titleAdjectives = []string{
	"dark", "silent", "lost", "golden", "broken", "hidden", "eternal",
	"crimson", "savage", "gentle", "frozen", "burning", "forgotten",
	"invisible", "electric", "ancient", "wild", "sacred", "hollow",
	"distant", "restless", "midnight", "scarlet", "emerald", "velvet",
}

var genres = []string{
	"drama", "comedy", "thriller", "horror", "romance", "action",
	"documentary", "animation", "western", "fantasy", "mystery", "noir",
}

var roles = []string{"actor", "actress", "director", "producer", "writer", "composer", "editor"}

var countryNames = []string{
	"italy", "france", "germany", "spain", "portugal", "austria",
	"switzerland", "belgium", "netherlands", "denmark", "norway", "sweden",
	"finland", "poland", "hungary", "greece", "ireland", "iceland",
	"croatia", "slovenia", "slovakia", "estonia", "latvia", "lithuania",
	"romania", "bulgaria", "albania", "serbia", "ukraine", "moldova",
	"turkey", "cyprus", "malta", "luxembourg", "monaco", "andorra",
}

var cityStems = []string{
	"porto", "villa", "san", "monte", "castel", "fonte", "terra", "aqua",
	"campo", "ponte", "val", "roca", "bella", "gran", "alta", "nova",
	"riva", "sole", "mar", "lago",
}

var citySuffixes = []string{
	"burg", "ville", "ton", "stadt", "grad", "polis", "ford", "haven",
	"field", "bridge", "mouth", "port", "holm", "berg", "dorf", "ia",
}

var riverStems = []string{
	"danube", "rhine", "rhone", "ebro", "tagus", "loire", "seine", "elbe",
	"oder", "vistula", "tiber", "arno", "po", "drava", "sava", "volga",
	"dniester", "douro", "garonne", "meuse",
}

var venueNames = []string{
	"vldb", "sigmod", "icde", "edbt", "cikm", "kdd", "www", "sigir",
	"pods", "icdt", "er", "dexa", "dasfaa", "ssdbm", "tods", "tkde",
	"vldbj", "is", "dke", "jacm",
}

var researchTerms = []string{
	"keyword", "search", "relational", "database", "query", "semantic",
	"probabilistic", "index", "graph", "steiner", "ranking", "schema",
	"markov", "learning", "evidence", "join", "optimization", "stream",
	"distributed", "transaction", "recovery", "concurrency", "mining",
	"clustering", "classification", "integration", "provenance", "skyline",
	"xml", "web", "ontology", "mapping", "crowdsourcing", "privacy",
}

func pick(r *rand.Rand, pool []string) string {
	return pool[r.Intn(len(pool))]
}

func personName(r *rand.Rand) string {
	return pick(r, firstNames) + " " + pick(r, lastNames)
}

func movieTitle(r *rand.Rand) string {
	switch r.Intn(4) {
	case 0:
		return "the " + pick(r, titleAdjectives) + " " + pick(r, titleNouns)
	case 1:
		return pick(r, titleAdjectives) + " " + pick(r, titleNouns)
	case 2:
		// A surname inside a title: deliberate cross-table ambiguity.
		return "the " + pick(r, titleNouns) + " of " + pick(r, lastNames)
	default:
		return pick(r, titleNouns) + " and " + pick(r, titleNouns)
	}
}

func cityName(r *rand.Rand) string {
	return pick(r, cityStems) + pick(r, citySuffixes)
}

func paperTitle(r *rand.Rand) string {
	a, b, c := pick(r, researchTerms), pick(r, researchTerms), pick(r, researchTerms)
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf("%s %s for %s systems", a, b, c)
	case 1:
		return fmt.Sprintf("efficient %s %s over %s data", a, b, c)
	default:
		return fmt.Sprintf("on the %s of %s %s", a, b, c)
	}
}

// mustInsert panics on insert errors: generator bugs, not runtime input.
func mustInsert(db *relational.Database, table string, row relational.Row) {
	if err := db.Insert(table, row); err != nil {
		panic(fmt.Sprintf("datasets: %s: %v", table, err))
	}
}
