// Package hmm implements the Hidden Markov Model machinery the QUEST
// forward module is built on: model representation, the list Viterbi
// algorithm (top-k most probable state sequences, Seshadri–Sundberg
// parallel-list variant), forward/backward evaluation and
// Expectation–Maximization training used by the feedback-based operating
// mode.
//
// All probabilities are kept in log space to survive long observation
// sequences; emission probabilities are supplied per observation through an
// EmissionFunc, which is how QUEST plugs in full-text scores (a fixed
// emission matrix would not work: the observation alphabet — the user's
// keywords — is unbounded).
package hmm

import (
	"fmt"
	"math"
	"sort"
)

// NegInf is the log probability of an impossible event.
var NegInf = math.Inf(-1)

// EmissionFunc returns the probability (linear scale, in [0,1]) that the
// given state emits the given observation symbol.
type EmissionFunc func(state int, symbol string) float64

// Model is a discrete-time HMM with N hidden states. Initial and transition
// distributions are stored in linear scale and converted internally.
type Model struct {
	N       int         // number of states
	Initial []float64   // len N, sums to 1
	Trans   [][]float64 // N x N, rows sum to 1
	Names   []string    // optional state names for diagnostics
}

// NewModel allocates a model with uniform initial and transition
// distributions.
func NewModel(n int) *Model {
	m := &Model{
		N:       n,
		Initial: make([]float64, n),
		Trans:   make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		m.Initial[i] = 1 / float64(n)
		m.Trans[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m.Trans[i][j] = 1 / float64(n)
		}
	}
	return m
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	c := &Model{N: m.N, Initial: append([]float64(nil), m.Initial...)}
	c.Trans = make([][]float64, m.N)
	for i := range m.Trans {
		c.Trans[i] = append([]float64(nil), m.Trans[i]...)
	}
	c.Names = append([]string(nil), m.Names...)
	return c
}

// Validate checks that the distributions are proper (within tolerance).
func (m *Model) Validate() error {
	if len(m.Initial) != m.N || len(m.Trans) != m.N {
		return fmt.Errorf("hmm: model arity mismatch")
	}
	if !sumsToOne(m.Initial) {
		return fmt.Errorf("hmm: initial distribution does not sum to 1")
	}
	for i, row := range m.Trans {
		if len(row) != m.N {
			return fmt.Errorf("hmm: transition row %d arity mismatch", i)
		}
		if !sumsToOne(row) {
			return fmt.Errorf("hmm: transition row %d does not sum to 1", i)
		}
	}
	return nil
}

func sumsToOne(p []float64) bool {
	s := 0.0
	for _, v := range p {
		if v < -1e-12 {
			return false
		}
		s += v
	}
	return math.Abs(s-1) < 1e-6
}

// Normalize rescales the initial distribution and each transition row to
// sum to 1, leaving all-zero rows uniform.
func (m *Model) Normalize() {
	normalizeInPlace(m.Initial)
	for i := range m.Trans {
		normalizeInPlace(m.Trans[i])
	}
}

func normalizeInPlace(p []float64) {
	s := 0.0
	for _, v := range p {
		s += v
	}
	if s <= 0 {
		u := 1 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return
	}
	for i := range p {
		p[i] /= s
	}
}

// Path is one decoded state sequence with its log probability.
type Path struct {
	States  []int
	LogProb float64
}

// Prob returns the linear-scale probability of the path.
func (p Path) Prob() float64 { return math.Exp(p.LogProb) }

func safeLog(x float64) float64 {
	if x <= 0 {
		return NegInf
	}
	return math.Log(x)
}

// Viterbi returns the single most probable state sequence for the
// observations, or ok=false when no sequence has non-zero probability.
func (m *Model) Viterbi(obs []string, emit EmissionFunc) (Path, bool) {
	paths := m.ListViterbi(obs, emit, 1)
	if len(paths) == 0 {
		return Path{}, false
	}
	return paths[0], true
}

// listEntry is one of the k best ways to reach a state at a time step.
type listEntry struct {
	logp      float64
	prevState int // -1 at t=0
	prevRank  int
}

// ListViterbi computes the top-k most probable state sequences using the
// parallel-list Viterbi algorithm: for every (time, state) pair it keeps the
// k best (predecessor state, predecessor rank) continuations, which is exact
// for sequence decoding. Complexity O(T·N²·k).
func (m *Model) ListViterbi(obs []string, emit EmissionFunc, k int) []Path {
	T := len(obs)
	if T == 0 || k <= 0 || m.N == 0 {
		return nil
	}

	// lists[t][s] = up to k best entries, sorted descending by logp.
	lists := make([][][]listEntry, T)
	for t := range lists {
		lists[t] = make([][]listEntry, m.N)
	}

	for s := 0; s < m.N; s++ {
		lp := safeLog(m.Initial[s]) + safeLog(emit(s, obs[0]))
		if lp == NegInf {
			continue
		}
		lists[0][s] = []listEntry{{logp: lp, prevState: -1, prevRank: -1}}
	}

	for t := 1; t < T; t++ {
		for s := 0; s < m.N; s++ {
			e := safeLog(emit(s, obs[t]))
			if e == NegInf {
				continue
			}
			// Gather candidate continuations from every predecessor's list.
			var cands []listEntry
			for ps := 0; ps < m.N; ps++ {
				tr := safeLog(m.Trans[ps][s])
				if tr == NegInf {
					continue
				}
				for rank, pe := range lists[t-1][ps] {
					cands = append(cands, listEntry{
						logp:      pe.logp + tr + e,
						prevState: ps,
						prevRank:  rank,
					})
				}
			}
			if len(cands) == 0 {
				continue
			}
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].logp != cands[j].logp {
					return cands[i].logp > cands[j].logp
				}
				if cands[i].prevState != cands[j].prevState {
					return cands[i].prevState < cands[j].prevState
				}
				return cands[i].prevRank < cands[j].prevRank
			})
			if len(cands) > k {
				cands = cands[:k]
			}
			lists[t][s] = cands
		}
	}

	// Collect final candidates across states.
	type final struct {
		state int
		rank  int
		logp  float64
	}
	var finals []final
	for s := 0; s < m.N; s++ {
		for rank, e := range lists[T-1][s] {
			finals = append(finals, final{state: s, rank: rank, logp: e.logp})
		}
	}
	sort.Slice(finals, func(i, j int) bool {
		if finals[i].logp != finals[j].logp {
			return finals[i].logp > finals[j].logp
		}
		if finals[i].state != finals[j].state {
			return finals[i].state < finals[j].state
		}
		return finals[i].rank < finals[j].rank
	})
	if len(finals) > k {
		finals = finals[:k]
	}
	if len(finals) == 0 {
		return nil
	}

	out := make([]Path, 0, len(finals))
	for _, f := range finals {
		states := make([]int, T)
		s, rank := f.state, f.rank
		for t := T - 1; t >= 0; t-- {
			states[t] = s
			e := lists[t][s][rank]
			s, rank = e.prevState, e.prevRank
		}
		out = append(out, Path{States: states, LogProb: f.logp})
	}
	return out
}

// Forward computes the log likelihood of the observation sequence and the
// scaled forward variables (for EM). Returns ok=false for impossible
// sequences.
func (m *Model) Forward(obs []string, emit EmissionFunc) (alpha [][]float64, scale []float64, logLik float64, ok bool) {
	T := len(obs)
	if T == 0 {
		return nil, nil, 0, false
	}
	alpha = make([][]float64, T)
	scale = make([]float64, T)
	for t := range alpha {
		alpha[t] = make([]float64, m.N)
	}
	for s := 0; s < m.N; s++ {
		alpha[0][s] = m.Initial[s] * emit(s, obs[0])
		scale[0] += alpha[0][s]
	}
	if scale[0] == 0 {
		return nil, nil, 0, false
	}
	for s := 0; s < m.N; s++ {
		alpha[0][s] /= scale[0]
	}
	for t := 1; t < T; t++ {
		for s := 0; s < m.N; s++ {
			sum := 0.0
			for ps := 0; ps < m.N; ps++ {
				sum += alpha[t-1][ps] * m.Trans[ps][s]
			}
			alpha[t][s] = sum * emit(s, obs[t])
			scale[t] += alpha[t][s]
		}
		if scale[t] == 0 {
			return nil, nil, 0, false
		}
		for s := 0; s < m.N; s++ {
			alpha[t][s] /= scale[t]
		}
	}
	logLik = 0
	for _, sc := range scale {
		logLik += math.Log(sc)
	}
	return alpha, scale, logLik, true
}

// backward computes the scaled backward variables matching Forward's
// scaling factors.
func (m *Model) backward(obs []string, emit EmissionFunc, scale []float64) [][]float64 {
	T := len(obs)
	beta := make([][]float64, T)
	for t := range beta {
		beta[t] = make([]float64, m.N)
	}
	for s := 0; s < m.N; s++ {
		beta[T-1][s] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		for s := 0; s < m.N; s++ {
			sum := 0.0
			for ns := 0; ns < m.N; ns++ {
				sum += m.Trans[s][ns] * emit(ns, obs[t+1]) * beta[t+1][ns]
			}
			beta[t][s] = sum / scale[t]
		}
	}
	return beta
}

// LogLikelihood returns the total log likelihood of a set of sequences.
func (m *Model) LogLikelihood(seqs [][]string, emit EmissionFunc) float64 {
	total := 0.0
	for _, obs := range seqs {
		if _, _, ll, ok := m.Forward(obs, emit); ok {
			total += ll
		} else {
			total += -1e9 // impossible sequence: huge penalty, keeps EM monotone checks meaningful
		}
	}
	return total
}

// TrainEM re-estimates the initial and transition distributions from
// unlabeled observation sequences (Baum–Welch restricted to the structural
// parameters; emissions stay external, as in QUEST where they come from the
// full-text engine). It performs at most maxIter iterations, stopping when
// the log likelihood improves by less than tol. Returns the number of
// iterations run.
//
// This is the on-line E-M training of the paper's feedback-based mode: each
// validated past search contributes its keyword sequence.
func (m *Model) TrainEM(seqs [][]string, emit EmissionFunc, maxIter int, tol float64) int {
	if len(seqs) == 0 || maxIter <= 0 {
		return 0
	}
	prev := math.Inf(-1)
	iter := 0
	for ; iter < maxIter; iter++ {
		initAcc := make([]float64, m.N)
		transNum := make([][]float64, m.N)
		transDen := make([]float64, m.N)
		for i := range transNum {
			transNum[i] = make([]float64, m.N)
		}
		total := 0.0
		used := 0
		for _, obs := range seqs {
			alpha, scale, ll, ok := m.Forward(obs, emit)
			if !ok {
				continue
			}
			used++
			total += ll
			beta := m.backward(obs, emit, scale)
			T := len(obs)

			// gamma[t][s] ∝ alpha[t][s] * beta[t][s]
			for s := 0; s < m.N; s++ {
				g := alpha[0][s] * beta[0][s] * scale[0]
				initAcc[s] += g
			}
			for t := 0; t < T-1; t++ {
				for s := 0; s < m.N; s++ {
					for ns := 0; ns < m.N; ns++ {
						xi := alpha[t][s] * m.Trans[s][ns] * emit(ns, obs[t+1]) * beta[t+1][ns]
						transNum[s][ns] += xi
					}
					transDen[s] += alpha[t][s] * beta[t][s] * scale[t]
				}
			}
		}
		if used == 0 {
			break
		}
		// M step with light additive smoothing so states never become
		// unreachable (QUEST must keep decoding new keyword mixes).
		const eps = 1e-6
		for s := 0; s < m.N; s++ {
			m.Initial[s] = initAcc[s] + eps
		}
		normalizeInPlace(m.Initial)
		for s := 0; s < m.N; s++ {
			if transDen[s] <= 0 {
				continue // keep prior row
			}
			for ns := 0; ns < m.N; ns++ {
				m.Trans[s][ns] = transNum[s][ns] + eps
			}
			normalizeInPlace(m.Trans[s])
		}
		if total-prev < tol && iter > 0 {
			iter++
			break
		}
		prev = total
	}
	return iter
}

// TrainListViterbi implements the list Viterbi training algorithm (Rota,
// Bergamaschi & Guerra, CIKM 2011): a hard-EM variant where the E step
// decodes the top-k state sequences for every observation sequence and
// accumulates counts weighted by each path's normalized probability, and
// the M step re-estimates initial/transition distributions from those
// weighted counts. Compared to full Baum–Welch it concentrates probability
// mass on the plausible decodings instead of all paths; compared to
// Viterbi training (k=1) it is less greedy. Returns the number of
// iterations run.
func (m *Model) TrainListViterbi(seqs [][]string, emit EmissionFunc, k, maxIter int, tol float64) int {
	if len(seqs) == 0 || k <= 0 || maxIter <= 0 {
		return 0
	}
	prev := math.Inf(-1)
	iter := 0
	for ; iter < maxIter; iter++ {
		initAcc := make([]float64, m.N)
		transAcc := make([][]float64, m.N)
		for i := range transAcc {
			transAcc[i] = make([]float64, m.N)
		}
		total := 0.0
		used := 0
		for _, obs := range seqs {
			paths := m.ListViterbi(obs, emit, k)
			if len(paths) == 0 {
				continue
			}
			used++
			// Normalize the k paths' probabilities into weights.
			maxLog := paths[0].LogProb
			wsum := 0.0
			weights := make([]float64, len(paths))
			for i, p := range paths {
				weights[i] = math.Exp(p.LogProb - maxLog)
				wsum += weights[i]
			}
			for i := range weights {
				weights[i] /= wsum
			}
			total += paths[0].LogProb
			for i, p := range paths {
				w := weights[i]
				initAcc[p.States[0]] += w
				for t := 0; t+1 < len(p.States); t++ {
					transAcc[p.States[t]][p.States[t+1]] += w
				}
			}
		}
		if used == 0 {
			break
		}
		const eps = 1e-6
		for s := 0; s < m.N; s++ {
			m.Initial[s] = initAcc[s] + eps
		}
		normalizeInPlace(m.Initial)
		for s := 0; s < m.N; s++ {
			rowSum := 0.0
			for ns := 0; ns < m.N; ns++ {
				rowSum += transAcc[s][ns]
			}
			if rowSum <= 0 {
				continue // state never visited: keep prior row
			}
			for ns := 0; ns < m.N; ns++ {
				m.Trans[s][ns] = transAcc[s][ns] + eps
			}
			normalizeInPlace(m.Trans[s])
		}
		if total-prev < tol && iter > 0 {
			iter++
			break
		}
		prev = total
	}
	return iter
}

// TrainSupervised re-estimates initial and transition distributions from
// labeled state sequences (user-validated configurations) by frequency
// counting with Laplace smoothing. QUEST uses it when feedback includes the
// validated configuration, which pins down the hidden states exactly.
func (m *Model) TrainSupervised(stateSeqs [][]int, smoothing float64) {
	if smoothing <= 0 {
		smoothing = 1e-3
	}
	init := make([]float64, m.N)
	trans := make([][]float64, m.N)
	for i := range trans {
		trans[i] = make([]float64, m.N)
	}
	for _, seq := range stateSeqs {
		if len(seq) == 0 {
			continue
		}
		if seq[0] >= 0 && seq[0] < m.N {
			init[seq[0]]++
		}
		for t := 0; t+1 < len(seq); t++ {
			a, b := seq[t], seq[t+1]
			if a >= 0 && a < m.N && b >= 0 && b < m.N {
				trans[a][b]++
			}
		}
	}
	for s := 0; s < m.N; s++ {
		init[s] += smoothing
		for ns := 0; ns < m.N; ns++ {
			trans[s][ns] += smoothing
		}
	}
	m.Initial = init
	m.Trans = trans
	m.Normalize()
}
