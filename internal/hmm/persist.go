package hmm

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelJSON is the stable serialization schema of a Model.
type modelJSON struct {
	N       int         `json:"n"`
	Initial []float64   `json:"initial"`
	Trans   [][]float64 `json:"trans"`
	Names   []string    `json:"names,omitempty"`
}

// Save writes the model as JSON. Together with Load it lets QUEST persist a
// trained feedback model across sessions (the paper's feedback accumulates
// over the lifetime of a deployment, not one process).
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(modelJSON{N: m.N, Initial: m.Initial, Trans: m.Trans, Names: m.Names})
}

// Load reads a model saved with Save and validates its distributions.
func Load(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("hmm: decoding model: %w", err)
	}
	m := &Model{N: mj.N, Initial: mj.Initial, Trans: mj.Trans, Names: mj.Names}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("hmm: loaded model invalid: %w", err)
	}
	return m, nil
}

// Restore replaces the model's parameters with those of a saved model. The
// state count must match (the state space is derived from the schema, so a
// schema change invalidates saved models).
func (m *Model) Restore(r io.Reader) error {
	loaded, err := Load(r)
	if err != nil {
		return err
	}
	if loaded.N != m.N {
		return fmt.Errorf("hmm: saved model has %d states, want %d (schema changed?)", loaded.N, m.N)
	}
	m.Initial = loaded.Initial
	m.Trans = loaded.Trans
	if len(loaded.Names) == m.N {
		m.Names = loaded.Names
	}
	return nil
}
