package hmm

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// fixedEmit builds an EmissionFunc from a state×symbol table.
func fixedEmit(table map[int]map[string]float64) EmissionFunc {
	return func(s int, sym string) float64 {
		return table[s][sym]
	}
}

// weatherModel is the classic 2-state (rainy/sunny) teaching HMM.
func weatherModel() (*Model, EmissionFunc) {
	m := NewModel(2)
	m.Initial = []float64{0.6, 0.4}
	m.Trans = [][]float64{{0.7, 0.3}, {0.4, 0.6}}
	emit := fixedEmit(map[int]map[string]float64{
		0: {"walk": 0.1, "shop": 0.4, "clean": 0.5},
		1: {"walk": 0.6, "shop": 0.3, "clean": 0.1},
	})
	return m, emit
}

func TestViterbiKnownResult(t *testing.T) {
	m, emit := weatherModel()
	// The canonical result for observations [walk shop clean] is [1 0 0].
	p, ok := m.Viterbi([]string{"walk", "shop", "clean"}, emit)
	if !ok {
		t.Fatal("no path")
	}
	want := []int{1, 0, 0}
	for i, s := range want {
		if p.States[i] != s {
			t.Fatalf("states = %v, want %v", p.States, want)
		}
	}
	wantProb := 0.4 * 0.6 * 0.4 * 0.4 * 0.7 * 0.5
	if got := p.Prob(); math.Abs(got-wantProb) > 1e-12 {
		t.Fatalf("prob = %v, want %v", got, wantProb)
	}
}

// enumeratePaths exhaustively scores every state sequence.
func enumeratePaths(m *Model, obs []string, emit EmissionFunc) []Path {
	var out []Path
	T := len(obs)
	seq := make([]int, T)
	var rec func(t int, logp float64)
	rec = func(t int, logp float64) {
		if logp == NegInf {
			return
		}
		if t == T {
			out = append(out, Path{States: append([]int(nil), seq...), LogProb: logp})
			return
		}
		for s := 0; s < m.N; s++ {
			var step float64
			if t == 0 {
				step = safeLog(m.Initial[s]) + safeLog(emit(s, obs[t]))
			} else {
				step = safeLog(m.Trans[seq[t-1]][s]) + safeLog(emit(s, obs[t]))
			}
			seq[t] = s
			rec(t+1, logp+step)
		}
	}
	rec(0, 0)
	sort.Slice(out, func(i, j int) bool { return out[i].LogProb > out[j].LogProb })
	return out
}

func randomModel(r *rand.Rand, n int, symbols []string) (*Model, EmissionFunc) {
	m := NewModel(n)
	for i := range m.Initial {
		m.Initial[i] = r.Float64() + 0.01
	}
	normalizeInPlace(m.Initial)
	for i := range m.Trans {
		for j := range m.Trans[i] {
			m.Trans[i][j] = r.Float64() + 0.01
		}
		normalizeInPlace(m.Trans[i])
	}
	table := make(map[int]map[string]float64, n)
	for s := 0; s < n; s++ {
		table[s] = make(map[string]float64, len(symbols))
		for _, sym := range symbols {
			// Some zero emissions to exercise pruning.
			if r.Intn(4) == 0 {
				table[s][sym] = 0
			} else {
				table[s][sym] = r.Float64()
			}
		}
	}
	return m, fixedEmit(table)
}

func TestViterbiMatchesBruteForceRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	symbols := []string{"a", "b", "c"}
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(3)
		T := 1 + r.Intn(4)
		m, emit := randomModel(r, n, symbols)
		obs := make([]string, T)
		for i := range obs {
			obs[i] = symbols[r.Intn(len(symbols))]
		}
		all := enumeratePaths(m, obs, emit)
		got, ok := m.Viterbi(obs, emit)
		if len(all) == 0 {
			if ok {
				t.Fatalf("trial %d: Viterbi found a path where none exists", trial)
			}
			continue
		}
		if !ok {
			t.Fatalf("trial %d: Viterbi found nothing, brute force found %d", trial, len(all))
		}
		if math.Abs(got.LogProb-all[0].LogProb) > 1e-9 {
			t.Fatalf("trial %d: viterbi logp %v != best %v", trial, got.LogProb, all[0].LogProb)
		}
	}
}

func TestListViterbiMatchesBruteForceTopK(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	symbols := []string{"x", "y"}
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(2)
		T := 2 + r.Intn(3)
		k := 1 + r.Intn(5)
		m, emit := randomModel(r, n, symbols)
		obs := make([]string, T)
		for i := range obs {
			obs[i] = symbols[r.Intn(len(symbols))]
		}
		all := enumeratePaths(m, obs, emit)
		got := m.ListViterbi(obs, emit, k)
		wantLen := k
		if len(all) < k {
			wantLen = len(all)
		}
		if len(got) != wantLen {
			t.Fatalf("trial %d: got %d paths, want %d", trial, len(got), wantLen)
		}
		for i := range got {
			if math.Abs(got[i].LogProb-all[i].LogProb) > 1e-9 {
				t.Fatalf("trial %d: rank %d logp %v, want %v", trial, i, got[i].LogProb, all[i].LogProb)
			}
		}
		// Paths must be distinct.
		seen := map[string]bool{}
		for _, p := range got {
			key := ""
			for _, s := range p.States {
				key += string(rune('0' + s))
			}
			if seen[key] {
				t.Fatalf("trial %d: duplicate path %v", trial, p.States)
			}
			seen[key] = true
		}
	}
}

func TestListViterbiMonotoneNonIncreasing(t *testing.T) {
	m, emit := weatherModel()
	paths := m.ListViterbi([]string{"walk", "shop", "clean", "walk"}, emit, 8)
	for i := 1; i < len(paths); i++ {
		if paths[i].LogProb > paths[i-1].LogProb+1e-12 {
			t.Fatalf("paths out of order at %d: %v > %v", i, paths[i].LogProb, paths[i-1].LogProb)
		}
	}
}

func TestListViterbiEdgeCases(t *testing.T) {
	m, emit := weatherModel()
	if got := m.ListViterbi(nil, emit, 3); got != nil {
		t.Error("empty observations must return nil")
	}
	if got := m.ListViterbi([]string{"walk"}, emit, 0); got != nil {
		t.Error("k=0 must return nil")
	}
	if got := m.ListViterbi([]string{"walk"}, emit, -1); got != nil {
		t.Error("k<0 must return nil")
	}
	// Impossible observation.
	if got := m.ListViterbi([]string{"fly"}, emit, 3); got != nil {
		t.Error("impossible symbol must return nil")
	}
}

func TestForwardLikelihoodMatchesEnumeration(t *testing.T) {
	m, emit := weatherModel()
	obs := []string{"walk", "shop", "clean"}
	_, _, ll, ok := m.Forward(obs, emit)
	if !ok {
		t.Fatal("forward failed")
	}
	// Total probability = sum over all paths.
	total := 0.0
	for _, p := range enumeratePaths(m, obs, emit) {
		total += math.Exp(p.LogProb)
	}
	if math.Abs(math.Exp(ll)-total) > 1e-12 {
		t.Fatalf("forward likelihood %v != enumerated %v", math.Exp(ll), total)
	}
}

func TestForwardImpossibleSequence(t *testing.T) {
	m, emit := weatherModel()
	if _, _, _, ok := m.Forward([]string{"fly"}, emit); ok {
		t.Fatal("impossible sequence must report !ok")
	}
	if _, _, _, ok := m.Forward(nil, emit); ok {
		t.Fatal("empty sequence must report !ok")
	}
}

func TestTrainEMImprovesLikelihood(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	symbols := []string{"a", "b", "c"}
	gen, emit := randomModel(r, 3, symbols)
	// Sample sequences from the generator model.
	sample := func() []string {
		T := 4
		obs := make([]string, T)
		s := sampleFrom(r, gen.Initial)
		for t := 0; t < T; t++ {
			// Sample an emittable symbol for state s.
			weights := make([]float64, len(symbols))
			for i, sym := range symbols {
				weights[i] = emit(s, sym)
			}
			obs[t] = symbols[sampleFrom(r, weights)]
			s = sampleFrom(r, gen.Trans[s])
		}
		return obs
	}
	var seqs [][]string
	for i := 0; i < 40; i++ {
		seqs = append(seqs, sample())
	}
	m := NewModel(3) // uniform start
	before := m.LogLikelihood(seqs, emit)
	iters := m.TrainEM(seqs, emit, 15, 1e-6)
	after := m.LogLikelihood(seqs, emit)
	if iters == 0 {
		t.Fatal("EM did not run")
	}
	if after < before-1e-6 {
		t.Fatalf("EM decreased log likelihood: %v -> %v", before, after)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("post-EM model invalid: %v", err)
	}
}

func sampleFrom(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

func TestTrainListViterbiImprovesLikelihood(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	symbols := []string{"a", "b", "c"}
	gen, emit := randomModel(r, 3, symbols)
	sample := func() []string {
		obs := make([]string, 5)
		s := sampleFrom(r, gen.Initial)
		for t := range obs {
			weights := make([]float64, len(symbols))
			for i, sym := range symbols {
				weights[i] = emit(s, sym)
			}
			obs[t] = symbols[sampleFrom(r, weights)]
			s = sampleFrom(r, gen.Trans[s])
		}
		return obs
	}
	var seqs [][]string
	for i := 0; i < 30; i++ {
		seqs = append(seqs, sample())
	}
	m := NewModel(3)
	before := m.LogLikelihood(seqs, emit)
	iters := m.TrainListViterbi(seqs, emit, 3, 12, 1e-6)
	after := m.LogLikelihood(seqs, emit)
	if iters == 0 {
		t.Fatal("list Viterbi training did not run")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("post-training model invalid: %v", err)
	}
	// Hard EM is not guaranteed monotone in total likelihood, but starting
	// from uniform it must not collapse; allow a generous tolerance.
	if after < before-1.0 {
		t.Fatalf("training collapsed the likelihood: %v -> %v", before, after)
	}
}

func TestTrainListViterbiMatchesSupervisedOnUnambiguousData(t *testing.T) {
	// With deterministic emissions (symbol identifies the state), the top-1
	// decode is exact, so list Viterbi training equals supervised counting.
	emit := fixedEmit(map[int]map[string]float64{
		0: {"x": 1},
		1: {"y": 1},
	})
	seqs := [][]string{
		{"x", "y", "y"},
		{"x", "x", "y"},
	}
	m1 := NewModel(2)
	m1.TrainListViterbi(seqs, emit, 2, 1, 1e-6)
	m2 := NewModel(2)
	m2.TrainSupervised([][]int{{0, 1, 1}, {0, 0, 1}}, 1e-6)
	for s := 0; s < 2; s++ {
		for ns := 0; ns < 2; ns++ {
			if math.Abs(m1.Trans[s][ns]-m2.Trans[s][ns]) > 0.01 {
				t.Fatalf("trans[%d][%d]: listViterbi %v vs supervised %v",
					s, ns, m1.Trans[s][ns], m2.Trans[s][ns])
			}
		}
	}
}

func TestTrainListViterbiEdgeCases(t *testing.T) {
	m := NewModel(2)
	emit := func(int, string) float64 { return 1 }
	if it := m.TrainListViterbi(nil, emit, 3, 5, 1e-6); it != 0 {
		t.Fatal("no data must not train")
	}
	if it := m.TrainListViterbi([][]string{{"a"}}, emit, 0, 5, 1e-6); it != 0 {
		t.Fatal("k=0 must not train")
	}
	if it := m.TrainListViterbi([][]string{{"a"}}, emit, 3, 0, 1e-6); it != 0 {
		t.Fatal("maxIter=0 must not train")
	}
	// All-impossible sequences: no usable data, model untouched.
	zero := func(int, string) float64 { return 0 }
	before := m.Clone()
	m.TrainListViterbi([][]string{{"a", "b"}}, zero, 3, 5, 1e-6)
	for i := range before.Initial {
		if m.Initial[i] != before.Initial[i] {
			t.Fatal("impossible data must leave the model unchanged")
		}
	}
}

func TestTrainEMNoData(t *testing.T) {
	m := NewModel(2)
	if it := m.TrainEM(nil, func(int, string) float64 { return 1 }, 5, 1e-6); it != 0 {
		t.Fatalf("EM on no data ran %d iterations", it)
	}
}

func TestTrainSupervisedCounts(t *testing.T) {
	m := NewModel(3)
	seqs := [][]int{
		{0, 1, 2},
		{0, 1, 1},
		{1, 2, 2},
	}
	m.TrainSupervised(seqs, 1e-9)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Initial: state 0 twice, state 1 once.
	if m.Initial[0] < m.Initial[1] || m.Initial[1] < m.Initial[2] {
		t.Fatalf("initial = %v", m.Initial)
	}
	// Transitions from 1: 1->2 twice, 1->1 once.
	if m.Trans[1][2] < m.Trans[1][1] {
		t.Fatalf("trans[1] = %v", m.Trans[1])
	}
	// Smoothing keeps unseen transitions positive.
	if m.Trans[2][0] <= 0 {
		t.Fatal("smoothing must keep probabilities positive")
	}
}

func TestTrainSupervisedIgnoresOutOfRange(t *testing.T) {
	m := NewModel(2)
	m.TrainSupervised([][]int{{0, 5, 1}, {-1}}, 0.01)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := weatherModel()
	c := m.Clone()
	c.Initial[0] = 0.99
	c.Trans[0][0] = 0.99
	if m.Initial[0] == 0.99 || m.Trans[0][0] == 0.99 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestValidate(t *testing.T) {
	m := NewModel(2)
	if err := m.Validate(); err != nil {
		t.Fatalf("uniform model invalid: %v", err)
	}
	m.Initial = []float64{0.5, 0.6}
	if err := m.Validate(); err == nil {
		t.Fatal("bad initial must fail")
	}
	m, _ = weatherModel()
	m.Trans[1] = []float64{0.2, 0.2}
	if err := m.Validate(); err == nil {
		t.Fatal("bad transition row must fail")
	}
}

func TestNormalizeZeroRow(t *testing.T) {
	m := NewModel(2)
	m.Trans[0] = []float64{0, 0}
	m.Normalize()
	if m.Trans[0][0] != 0.5 || m.Trans[0][1] != 0.5 {
		t.Fatalf("zero row must become uniform: %v", m.Trans[0])
	}
}
