package hmm

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m, _ := weatherModel()
	m.Names = []string{"rainy", "sunny"}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N != m.N {
		t.Fatalf("N = %d, want %d", loaded.N, m.N)
	}
	for i := range m.Initial {
		if loaded.Initial[i] != m.Initial[i] {
			t.Fatalf("initial[%d] = %v, want %v", i, loaded.Initial[i], m.Initial[i])
		}
		for j := range m.Trans[i] {
			if loaded.Trans[i][j] != m.Trans[i][j] {
				t.Fatalf("trans[%d][%d] differs", i, j)
			}
		}
	}
	if loaded.Names[0] != "rainy" {
		t.Fatalf("names = %v", loaded.Names)
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	// Distributions not summing to 1.
	bad := `{"n":2,"initial":[0.9,0.9],"trans":[[0.5,0.5],[0.5,0.5]]}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid distributions must be rejected")
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestRestoreStateCountMismatch(t *testing.T) {
	m, _ := weatherModel()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewModel(3)
	if err := other.Restore(&buf); err == nil {
		t.Fatal("restoring a 2-state model into 3 states must fail")
	}
}

func TestRestoreReplacesParameters(t *testing.T) {
	m, _ := weatherModel()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewModel(2) // uniform
	if err := fresh.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.Initial[0] != 0.6 || fresh.Trans[0][0] != 0.7 {
		t.Fatalf("parameters not restored: %v %v", fresh.Initial, fresh.Trans)
	}
	// The restored model must decode identically to the original.
	_, emit := weatherModel()
	p1, ok1 := m.Viterbi([]string{"walk", "shop"}, emit)
	p2, ok2 := fresh.Viterbi([]string{"walk", "shop"}, emit)
	if !ok1 || !ok2 || p1.LogProb != p2.LogProb {
		t.Fatal("restored model decodes differently")
	}
}
