package quest_test

import (
	"sort"
	"strings"
	"testing"

	quest "repro"
)

// TestOpenShardedEndToEnd runs the public sharded engine against the
// single-node engine on the same instance: searches succeed with
// PruneEmpty validation fanning out across shards, and executing a ranked
// explanation returns the same tuples either way — the execution topology
// is invisible to results.
func TestOpenShardedEndToEnd(t *testing.T) {
	build := func() *quest.Database {
		return quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	}
	opts := quest.Defaults()
	opts.PruneEmpty = true
	full := quest.Open(build(), opts)
	sharded, err := quest.OpenSharded(build(), 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, ok := sharded.Source().(*quest.ShardedSource)
	if !ok {
		t.Fatalf("sharded engine source = %T", sharded.Source())
	}
	if src.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d, want 3", src.ShardCount())
	}

	for _, query := range []string{"spielberg drama", "scorsese thriller"} {
		fx, err := full.Search(query)
		if err != nil {
			t.Fatalf("full search %q: %v", query, err)
		}
		sx, err := sharded.Search(query)
		if err != nil {
			t.Fatalf("sharded search %q: %v", query, err)
		}
		if len(fx) == 0 || len(sx) == 0 {
			t.Fatalf("%q: empty result (full=%d sharded=%d)", query, len(fx), len(sx))
		}
		// Execute the sharded engine's top explanation on both engines: the
		// SQL is the contract, so the tuple multisets must coincide.
		stmt := sx[0].SQL
		fres, err := quest.RunSQL(quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1}), stmt)
		if err != nil {
			t.Fatalf("full execution of %q: %v", stmt, err)
		}
		sres, err := sharded.Execute(sx[0])
		if err != nil {
			t.Fatalf("sharded execution of %q: %v", stmt, err)
		}
		if len(fres.Rows) != len(sres.Rows) {
			t.Fatalf("%q: %d rows sharded vs %d full", stmt, len(sres.Rows), len(fres.Rows))
		}
		canon := func(res *quest.Result) []string {
			out := make([]string, len(res.Rows))
			for i, r := range res.Rows {
				var b strings.Builder
				for _, v := range r {
					b.WriteString(v.String())
					b.WriteByte('|')
				}
				out[i] = b.String()
			}
			sort.Strings(out)
			return out
		}
		f, s := canon(fres), canon(sres)
		for i := range f {
			if f[i] != s[i] {
				t.Fatalf("%q: row divergence %s vs %s", stmt, s[i], f[i])
			}
		}
	}

	// PruneEmpty ran existence probes through the shard fan-out.
	if st := src.Stats(); st.ExistsProbes == 0 && st.GatherQueries == 0 {
		t.Error("sharded engine never touched the coordinator paths")
	}

	// Statistics flow through the engine regardless of topology.
	fcs, err := full.ColumnStatistics("movie", "production_year")
	if err != nil {
		t.Fatal(err)
	}
	scs, err := sharded.ColumnStatistics("movie", "production_year")
	if err != nil {
		t.Fatal(err)
	}
	if fcs.Rows != scs.Rows || fcs.NullCount != scs.NullCount {
		t.Errorf("merged stats rows/nulls %d/%d, want %d/%d", scs.Rows, scs.NullCount, fcs.Rows, fcs.NullCount)
	}
}

// TestOpenBackendKinds opens the engine over every registered backend kind
// and checks a search works end to end.
func TestOpenBackendKinds(t *testing.T) {
	for _, kind := range []string{"full", "sharded"} {
		eng, err := quest.OpenBackend(kind, quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1}), quest.Defaults())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		ex, err := eng.Search("spielberg drama")
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(ex) == 0 {
			t.Fatalf("%s: no results", kind)
		}
	}
	if _, err := quest.OpenBackend("bogus", quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1}), quest.Defaults()); err == nil {
		t.Fatal("OpenBackend accepted an unknown kind")
	}
}
