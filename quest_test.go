package quest_test

import (
	"strings"
	"testing"

	quest "repro"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	eng := quest.Open(db, quest.Defaults())
	results, err := eng.Search("smith drama")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no explanations")
	}
	for _, ex := range results {
		if ex.SQL == "" {
			t.Fatal("explanation without SQL")
		}
		if _, err := quest.ParseSQL(ex.SQL); err != nil {
			t.Fatalf("unparseable SQL: %v", err)
		}
		if _, err := eng.Execute(ex); err != nil {
			t.Fatalf("inexecutable SQL: %v\n%s", err, ex.SQL)
		}
	}
}

func TestPublicAPICustomSchema(t *testing.T) {
	s := quest.NewSchema()
	if err := s.AddTable(&quest.TableSchema{
		Name: "book",
		Columns: []quest.Column{
			{Name: "book_id", Type: 1 /* INT */, NotNull: true},
			{Name: "title", Type: 3 /* TEXT */},
		},
		PrimaryKey: "book_id",
	}); err != nil {
		t.Fatal(err)
	}
	db, err := quest.NewDatabase("books", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("book", quest.Row{quest.Int(1), quest.Text("the silent garden")}); err != nil {
		t.Fatal(err)
	}
	eng := quest.Open(db, quest.Defaults())
	results, err := eng.Search("garden")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("custom schema search found nothing")
	}
	res, err := eng.Execute(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no tuples for garden")
	}
}

func TestPublicAPIHiddenSource(t *testing.T) {
	db := quest.BuildMondial(quest.DatasetConfig{Seed: 42, Scale: 1})
	opts := quest.Defaults()
	opts.UseLike = true
	eng := quest.OpenHidden(db, quest.DefaultThesaurus(), opts)
	results, err := eng.Search("italy population")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("hidden source search found nothing")
	}
}

func TestPublicAPIFeedbackLoop(t *testing.T) {
	db := quest.BuildDBLP(quest.DatasetConfig{Seed: 42, Scale: 1})
	eng := quest.Open(db, quest.Defaults())
	gold := &quest.Configuration{
		Keywords: []string{"keyword", "vldb"},
		Terms: []quest.Term{
			{Kind: quest.KindDomain, Table: "paper", Column: "title"},
			{Kind: quest.KindDomain, Table: "venue", Column: "name"},
		},
	}
	var batch []*quest.Configuration
	for i := 0; i < 10; i++ {
		batch = append(batch, gold)
	}
	eng.AddFeedback(batch)
	if !eng.Forward().HasFeedback() {
		t.Fatal("feedback not registered")
	}
	results, err := eng.Search("keyword vldb")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results after feedback")
	}
}

func TestPublicAPITokenize(t *testing.T) {
	got := quest.Tokenize(`"new york" city`)
	if len(got) != 2 || got[0] != "new york" {
		t.Fatalf("Tokenize = %v", got)
	}
}

func TestPublicAPIRenderExplanation(t *testing.T) {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	eng := quest.Open(db, quest.Defaults())
	results, err := eng.Search("smith drama")
	if err != nil || len(results) == 0 {
		t.Fatalf("search: %v", err)
	}
	out := quest.RenderExplanation(results[0])
	if !strings.Contains(out, "[") {
		t.Fatalf("render = %q", out)
	}
}

func TestPublicAPIRunSQL(t *testing.T) {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	res, err := quest.RunSQL(db, "SELECT COUNT(*) FROM movie")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 300 {
		t.Fatalf("movie count = %v, want 300", res.Rows[0][0])
	}
}

func TestAllThreeDatasetsSearchable(t *testing.T) {
	cfg := quest.DatasetConfig{Seed: 42, Scale: 1}
	for name, pair := range map[string]struct {
		db    *quest.Database
		query string
	}{
		"imdb":    {quest.BuildIMDB(cfg), "smith thriller"},
		"mondial": {quest.BuildMondial(cfg), "italy city"},
		"dblp":    {quest.BuildDBLP(cfg), "keyword search"},
	} {
		eng := quest.Open(pair.db, quest.Defaults())
		results, err := eng.Search(pair.query)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(results) == 0 {
			t.Fatalf("%s: no explanations for %q", name, pair.query)
		}
	}
}
