package quest_test

import (
	"fmt"

	quest "repro"
)

// ExampleOpen shows the minimal search loop: build a database, open an
// engine, search, read the ranked keyword→term mappings.
func ExampleOpen() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	eng := quest.Open(db, quest.Defaults())

	results, err := eng.Search("spielberg thriller")
	if err != nil {
		panic(err)
	}
	for i, ex := range results {
		if i >= 2 {
			break
		}
		fmt.Printf("%d %s\n", i+1, ex.Config)
	}
	// Output:
	// 1 spielberg→company.name=?, thriller→movie.genre=?
	// 2 spielberg→movie.title=?, thriller→movie.title
}

// ExampleRunSQL shows direct SQL access to the embedded engine.
func ExampleRunSQL() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	res, err := quest.RunSQL(db, "SELECT COUNT(*) FROM movie WHERE genre = 'drama'")
	if err != nil {
		panic(err)
	}
	fmt.Println("dramas:", res.Rows[0][0])
	// Output:
	// dramas: 20
}

// ExampleTokenize shows phrase-aware keyword splitting.
func ExampleTokenize() {
	fmt.Printf("%q\n", quest.Tokenize(`"new york" population`))
	// Output:
	// ["new york" "population"]
}

// ExampleAdaptUncertainty shows the feedback-volume adaptation rule.
func ExampleAdaptUncertainty() {
	u := quest.Defaults().Uncertainty
	cold := quest.AdaptUncertainty(u, 0)
	warm := quest.AdaptUncertainty(u, 20)
	fmt.Printf("cold OCf=%.2f warm OCf=%.2f\n", cold.OCf, warm.OCf)
	// Output:
	// cold OCf=0.80 warm OCf=0.11
}
