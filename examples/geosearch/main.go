// Command geosearch runs QUEST on the Mondial-like geography database —
// the paper's "few instances but a very complex schema where tables are
// connected through many paths" scenario. It demonstrates why the backward
// module matters: the same pair of keywords can be joined through several
// structurally different paths (a river crossing a country, a river
// crossing a neighbour of the country, a city on the river's country, ...),
// and the Steiner-tree enumeration with sub-tree pruning surfaces the
// distinct alternatives.
package main

import (
	"fmt"
	"log"
	"strings"

	quest "repro"
)

func main() {
	db := quest.BuildMondial(quest.DatasetConfig{Seed: 42, Scale: 1})
	fmt.Printf("Mondial scenario: %d tables, %d FK edges, %d tuples (complex schema, few rows)\n",
		len(db.Schema.Tables()), len(db.Schema.JoinEdges()), db.TotalRows())

	opts := quest.Defaults()
	opts.K = 6
	eng := quest.Open(db, opts)

	// Show how rich the join structure is compared to the instance.
	g := eng.Backward().Graph()
	fmt.Printf("schema graph: %d attribute nodes, %d edges\n\n", g.Len(), g.EdgeCount())

	queries := []string{
		"italy city",       // which join path: city.country or capital?
		"danube france",    // river–country through geo_river
		"eu italy",         // organization membership path
		"italy france",     // two countries: borders table vs shared org
		"population italy", // schema keyword + country value
	}
	for _, q := range queries {
		fmt.Printf("================ query: %q ================\n", q)
		results, err := eng.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(results) == 0 {
			fmt.Println("no explanations")
			continue
		}
		// Group by join structure to show the distinct paths.
		seen := map[string]bool{}
		for i, ex := range results {
			key := strings.Join(ex.Interpretation.Tables(), "+")
			marker := " "
			if !seen[key] {
				marker = "*" // first explanation using this table set
				seen[key] = true
			}
			res, err := eng.Execute(ex)
			n := 0
			if err == nil {
				n = len(res.Rows)
			}
			fmt.Printf("%s #%d belief=%.4f tables=%-40s tuples=%d\n", marker, i+1, ex.Belief, key, n)
		}
		fmt.Printf("(%d distinct join structures in top-%d)\n\n", len(seen), len(results))
	}

	// Deep dive on one ambiguous query: print SQL of each distinct path.
	fmt.Println("================ distinct join paths for \"danube france\" ================")
	results, err := eng.Search("danube france")
	if err != nil {
		log.Fatal(err)
	}
	seen := map[string]bool{}
	for _, ex := range results {
		key := strings.Join(ex.Interpretation.Tables(), "+")
		if seen[key] {
			continue
		}
		seen[key] = true
		fmt.Printf("\npath %s:\n  %s\n", key, ex.SQL)
	}
}
