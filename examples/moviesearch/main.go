// Command moviesearch reproduces the first phase of the paper's
// demonstration on the IMDB-like scenario: a set of chosen ambiguous
// keyword queries, each producing multiple configurations with multiple
// join paths, shown with the partial results of every module — the
// a-priori mode, the feedback mode, the backward interpretations and the
// final DS combination.
package main

import (
	"fmt"
	"strings"

	quest "repro"
)

func main() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 2})
	opts := quest.Defaults()
	opts.K = 5
	eng := quest.Open(db, opts)
	fmt.Printf("IMDB scenario: %d tables, %d tuples (simple star schema, many rows)\n\n",
		len(db.Schema.Tables()), db.TotalRows())

	// Deliberately ambiguous queries: surnames occur both as person names
	// and inside movie titles; genre words occur as values of movie.genre.
	queries := []string{
		"smith drama",    // person vs title-token + genre value
		"scorsese",       // a surname that also appears in company names
		"thriller smith", // order-insensitive mapping
		"movie 1994",     // schema keyword + numeric domain value
		"title night",    // attribute keyword + value keyword
	}

	for _, q := range queries {
		fmt.Printf("================ query: %q ================\n", q)
		keywords := quest.Tokenize(q)

		// Partial results, module by module (demo message 2).
		ap := eng.Forward().TopKApriori(keywords, 3)
		fmt.Println("a-priori configurations:")
		for _, c := range ap {
			fmt.Printf("  %.2e  %s\n", c.Score, c)
		}
		fb := eng.Forward().TopKFeedback(keywords, 3)
		fmt.Println("feedback configurations (untrained → near-uniform):")
		for _, c := range fb {
			fmt.Printf("  %.2e  %s\n", c.Score, c)
		}

		// Full pipeline.
		results, err := eng.Search(q)
		if err != nil {
			fmt.Printf("error: %v\n\n", err)
			continue
		}
		fmt.Println("final explanations (DS-combined):")
		for i, ex := range results {
			res, err := eng.Execute(ex)
			n := 0
			if err == nil {
				n = len(res.Rows)
			}
			fmt.Printf("  #%d belief=%.4f tuples=%d\n     %s\n", i+1, ex.Belief, n, ex.SQL)
		}
		fmt.Println()
	}

	// Show adaptation: distrust the backward module and re-rank.
	fmt.Println("================ adaptation (demo message 4) ================")
	q := "smith drama"
	for _, u := range []quest.Uncertainty{
		{OCap: 0.2, OCf: 0.8, OC: 0.1, OI: 0.8},
		{OCap: 0.2, OCf: 0.8, OC: 0.8, OI: 0.1},
	} {
		eng.SetUncertainty(u)
		results, err := eng.Search(q)
		if err != nil || len(results) == 0 {
			continue
		}
		fmt.Printf("OC=%.1f OI=%.1f → top: belief=%.4f tables=%s\n",
			u.OC, u.OI, results[0].Belief,
			strings.Join(results[0].Interpretation.Tables(), "+"))
	}
}
