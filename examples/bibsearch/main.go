// Command bibsearch runs QUEST on the DBLP-like bibliography database and
// demonstrates the feedback training loop: the same ambiguous query is
// asked before and after the system observes validated searches, and the
// Dempster–Shafer uncertainties adapt with the feedback volume (the
// paper's "the specific values of the parameters OCap and OCf change as
// the system performs").
package main

import (
	"fmt"
	"log"
	"strings"

	quest "repro"
)

// sampleQuery derives an ambiguous two-keyword query that is guaranteed to
// have an answer: the surname of the first author of paper #1 and a content
// word from that paper's title.
func sampleQuery(db *quest.Database) string {
	authored := db.Table("authored")
	if authored == nil || authored.Len() == 0 {
		return "smith search"
	}
	first := authored.Row(0)
	author, ok := db.Table("author").LookupPK(first[1])
	if !ok {
		return "smith search"
	}
	paper, ok := db.Table("paper").LookupPK(first[2])
	if !ok {
		return "smith search"
	}
	nameParts := strings.Fields(author[1].AsString())
	surname := nameParts[len(nameParts)-1]
	var term string
	for _, w := range strings.Fields(paper[1].AsString()) {
		if len(w) >= 6 { // a content word, not "on"/"the"/"for"
			term = w
			break
		}
	}
	if term == "" {
		term = strings.Fields(paper[1].AsString())[0]
	}
	return surname + " " + term
}

func main() {
	db := quest.BuildDBLP(quest.DatasetConfig{Seed: 42, Scale: 1})
	fmt.Printf("DBLP scenario: %d tables, %d tuples (large instance, non-trivial schema)\n\n",
		len(db.Schema.Tables()), db.TotalRows())

	opts := quest.Defaults()
	opts.K = 5
	eng := quest.Open(db, opts)
	eng.AutoAdapt(true) // re-derive OCap/OCf from the feedback volume

	// Pick a real (author surname, title term) pair from the data so the
	// final explanation provably has matching tuples: the last name of the
	// first author of paper #1 plus a content word of that paper's title.
	query := sampleQuery(db)
	fmt.Printf("query sampled from the instance: %q\n\n", query)

	show := func(stage string) {
		u := eng.Options().Uncertainty
		fmt.Printf("---- %s (OCap=%.2f OCf=%.2f, %d validated searches) ----\n",
			stage, u.OCap, u.OCf, eng.Forward().FeedbackCount())
		results, err := eng.Search(query)
		if err != nil {
			log.Fatal(err)
		}
		for i, ex := range results {
			fmt.Printf("#%d belief=%.4f  %s\n", i+1, ex.Belief, ex.Config)
		}
		if len(results) > 0 {
			fmt.Printf("top sql: %s\n", results[0].SQL)
		}
		fmt.Println()
	}

	show("cold start — a-priori dominates")

	// The user keeps validating the interpretation "this author wrote a
	// paper whose title mentions this term": surname → author.name, term →
	// paper.title.
	gold := &quest.Configuration{
		Keywords: quest.Tokenize(query),
		Terms: []quest.Term{
			{Kind: quest.KindDomain, Table: "author", Column: "name"},
			{Kind: quest.KindDomain, Table: "paper", Column: "title"},
		},
	}
	for round, n := range []int{2, 8, 20} {
		var batch []*quest.Configuration
		for i := 0; i < n; i++ {
			batch = append(batch, gold)
		}
		eng.AddFeedback(batch)
		show(fmt.Sprintf("after feedback round %d", round+1))
	}

	// Execute the final top explanation end to end.
	results, err := eng.Search(query)
	if err != nil || len(results) == 0 {
		log.Fatalf("final search failed: %v", err)
	}
	res, err := eng.Execute(results[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final top explanation returned %d tuples\n", len(res.Rows))
	max := 6
	if len(res.Rows) < max {
		max = len(res.Rows)
	}
	fmt.Println(&quest.Result{Columns: res.Columns, Rows: res.Rows[:max]})
}
