// Command deepweb demonstrates QUEST over a hidden (Deep Web) source: the
// engine only sees the enriched schema — column annotations, value
// patterns, data types — plus the built-in ontology, and executes SQL
// through an opaque endpoint, as it would against a web form or service.
// No full-text index over the data is ever built; keyword→attribute
// relevance comes entirely from metadata, which is the capability the
// paper claims no other system provides.
package main

import (
	"fmt"
	"log"

	quest "repro"
)

func main() {
	// The database exists, but QUEST will not be allowed to scan it.
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})

	opts := quest.Defaults()
	opts.K = 5
	opts.UseLike = true // hidden engines rarely expose full-text MATCH
	hidden := quest.OpenHidden(db, quest.DefaultThesaurus(), opts)
	fmt.Println("opened imdb as a hidden source: metadata + ontology only")
	fmt.Println()

	// What the wrapper can still see: the enriched schema.
	fmt.Println("enriched schema (what the wrapper works from):")
	for _, ts := range db.Schema.Tables() {
		for _, c := range ts.Columns {
			if len(c.Annotations) == 0 && c.Pattern == "" {
				continue
			}
			fmt.Printf("  %s.%s", ts.Name, c.Name)
			if len(c.Annotations) > 0 {
				fmt.Printf("  annotations=%v", c.Annotations)
			}
			if c.Pattern != "" {
				fmt.Printf("  pattern=%q", c.Pattern)
			}
			fmt.Println()
		}
	}
	fmt.Println()

	// Queries the metadata wrapper can resolve without touching the data:
	//  - "1994" fits the year pattern of person.birth_year / movie.production_year,
	//  - "drama" fits the genre picklist pattern,
	//  - "actor" relates to cast_info.role and person annotations via the ontology,
	//  - "film" is a thesaurus synonym of the movie table.
	queries := []string{
		"drama 1994",
		"film 1994",
		"actor smith",
	}
	for _, q := range queries {
		fmt.Printf("================ query: %q ================\n", q)
		results, err := hidden.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(results) == 0 {
			fmt.Println("no explanations (metadata gave no admissible mapping)")
			continue
		}
		for i, ex := range results {
			fmt.Printf("#%d belief=%.4f  %s\n", i+1, ex.Belief, ex.Config)
			fmt.Printf("   %s\n", ex.SQL)
		}
		// Execution goes through the endpoint — the only data access.
		res, err := hidden.Execute(results[0])
		if err != nil {
			fmt.Printf("endpoint error: %v\n\n", err)
			continue
		}
		fmt.Printf("endpoint returned %d tuples for the top explanation\n\n", len(res.Rows))
	}

	// Contrast with full access on the same query.
	fmt.Println("================ same query, full access ================")
	full := quest.Open(db, quest.Defaults())
	for _, label := range []struct {
		name string
		eng  *quest.Engine
	}{
		{"hidden", hidden}, {"full  ", full},
	} {
		results, err := label.eng.Search("drama 1994")
		if err != nil || len(results) == 0 {
			fmt.Printf("%s: no results\n", label.name)
			continue
		}
		fmt.Printf("%s: top mapping %s\n", label.name, results[0].Config)
	}
}
