// Command quickstart is the minimal end-to-end QUEST walkthrough: build a
// database, open an engine, run one keyword query, print the ranked SQL
// explanations and execute the best one.
package main

import (
	"fmt"
	"log"

	quest "repro"
)

func main() {
	// 1. A populated database (synthetic IMDB-like: movies, people, cast).
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	fmt.Printf("database %q: %d tables, %d tuples\n",
		db.Name, len(db.Schema.Tables()), db.TotalRows())

	// 2. The engine (setup phase: full-text indexes, schema graph, HMM).
	eng := quest.Open(db, quest.Defaults())

	// 3. A keyword query. "smith" is a person name token, "drama" a genre
	// value: QUEST must map each keyword to the right attribute (forward
	// step) and join person→cast_info→movie (backward step).
	const query = "smith drama"
	fmt.Printf("\nquery: %q\n\n", query)
	results, err := eng.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no explanations found")
	}

	// 4. Ranked explanations: keyword→term mapping, join path, belief, SQL.
	for i, ex := range results {
		fmt.Printf("#%d  belief=%.4f\n", i+1, ex.Belief)
		fmt.Printf("    mapping: %s\n", ex.Config)
		fmt.Printf("    sql:     %s\n", ex.SQL)
	}

	// 5. Execute the top explanation through the wrapper.
	rows, err := eng.Execute(results[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop explanation returned %d tuples:\n%s", len(rows.Rows), rows)

	// 6. The demo GUI's graph view: which database portion the query used.
	fmt.Printf("\ninvolved database portion:\n%s", quest.RenderExplanation(results[0]))
}
